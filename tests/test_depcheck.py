"""Tests for the cache-key soundness subsystem (``repro.depcheck``).

Three layers:

* the diff/report machinery on synthetic :class:`StageDepResult`s;
* the static pass against the real repository (the CI gate: zero
  diagnostics, exact per-stage footprints for the anchor stages, and a
  seeded regression must be caught);
* the runtime access sanitizer (proxy transparency, recording windows,
  pipeline integration, cross-validation against the static result).
"""

import os
import pickle

import pytest

from repro.config import ALL_FIELDS, TRACE_FIELDS, GPUConfig
from repro.depcheck import (
    AccessRecordingConfig,
    DepcheckReport,
    DepDiagnostic,
    StageDepResult,
    analyze_stage_deps,
    check_runtime,
    record_stage,
    recording_config,
)
from repro.depcheck.modindex import ModuleIndex
from repro.depcheck.runtime import (
    clear_recorded,
    reads_from_metrics,
    recorded_reads,
)
from repro.depcheck.stagedeps import infer_stage_reads
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import Pipeline
from repro.pipeline.stages import (
    CACHE_SIM_FIELDS,
    COSTMODEL_FIELDS,
    LATENCY_FIELDS,
    ORACLE_FIELDS,
    PREDICT_FIELDS,
    PROFILE_FIELDS,
    STAGES,
    StageSpec,
)
from repro.staticcheck.report import Severity
from repro.workloads.generators import Scale


@pytest.fixture(scope="module")
def index():
    return ModuleIndex.build()


@pytest.fixture(scope="module")
def report(index):
    return analyze_stage_deps(index)


# ---------------------------------------------------------------------------
# Diff machinery
# ---------------------------------------------------------------------------


class TestStageDepResult:
    def test_undeclared_excludes_keyed_coverage(self):
        result = StageDepResult(
            stage="s",
            declared=frozenset({"a"}),
            inferred=frozenset({"a", "b", "c"}),
            keyed_coverage=frozenset({"b"}),
        )
        assert result.undeclared == frozenset({"c"})

    def test_unkeyed_coverage_must_be_declared(self):
        # A field an unkeyed input depends on is required even when the
        # stage itself never reads it.
        result = StageDepResult(
            stage="s",
            declared=frozenset({"a"}),
            inferred=frozenset({"a"}),
            keyed_coverage=frozenset(),
            unkeyed_coverage=frozenset({"b"}),
        )
        assert result.undeclared == frozenset({"b"})
        assert result.over_declared == frozenset()

    def test_over_declared_spares_unkeyed_coverage(self):
        result = StageDepResult(
            stage="s",
            declared=frozenset({"a", "b", "c"}),
            inferred=frozenset({"a"}),
            keyed_coverage=frozenset(),
            unkeyed_coverage=frozenset({"b"}),
        )
        assert result.over_declared == frozenset({"c"})

    def test_effective_coverage(self):
        result = StageDepResult(
            stage="s",
            declared=frozenset({"a"}),
            inferred=frozenset({"a"}),
            keyed_coverage=frozenset({"b"}),
        )
        assert result.effective_coverage == frozenset({"a", "b"})


class TestReport:
    def test_diagnostic_roundtrip(self):
        diagnostic = DepDiagnostic(
            stage="predict",
            check_id="depcheck-undeclared-read",
            severity=Severity.ERROR,
            message="reads config.x",
            where="somewhere.py:3",
        )
        assert DepDiagnostic.from_dict(diagnostic.to_dict()) == diagnostic

    def test_has_errors_ignores_warnings(self):
        rep = DepcheckReport(
            diagnostics=[
                DepDiagnostic("s", "depcheck-over-declared",
                              Severity.WARNING, "m")
            ]
        )
        assert not rep.has_errors
        assert len(rep.warnings) == 1

    def test_render_text_mentions_undeclared(self):
        rep = DepcheckReport(
            stages=[
                StageDepResult(
                    stage="s",
                    declared=frozenset(),
                    inferred=frozenset({"x"}),
                    keyed_coverage=frozenset(),
                )
            ]
        )
        assert "UNDECLARED: x" in rep.render_text()


# ---------------------------------------------------------------------------
# The static pass on the real repository
# ---------------------------------------------------------------------------


class TestStaticPass:
    def test_repo_is_clean(self, report):
        assert report.diagnostics == [], report.render_text()

    def test_all_stages_analyzed(self, report):
        assert {r.stage for r in report.stages} == set(STAGES)

    def test_trace_footprint_exact(self, report):
        assert report.stage_result("trace").inferred == TRACE_FIELDS

    def test_costmodel_footprint_exact(self, report):
        assert report.stage_result("costmodel").inferred == COSTMODEL_FIELDS

    def test_cache_sim_footprint_exact(self, report):
        assert report.stage_result("cache_sim").inferred == CACHE_SIM_FIELDS

    def test_latency_table_footprint_exact(self, report):
        assert (
            report.stage_result("latency_table").inferred == LATENCY_FIELDS
        )

    def test_profiles_footprint_exact(self, report):
        assert (
            report.stage_result("interval_profiles").inferred
            == PROFILE_FIELDS
        )

    def test_oracle_footprint_exact(self, report):
        assert report.stage_result("oracle").inferred == ORACLE_FIELDS

    def test_predict_narrower_than_all_fields(self, report):
        # The whole point of the exercise: predict no longer keys on
        # the full config.
        result = report.stage_result("predict")
        assert result.declared == PREDICT_FIELDS < ALL_FIELDS
        assert result.inferred | result.unkeyed_coverage == PREDICT_FIELDS

    def test_fresh_config_defaults_not_attributed(self, report):
        # ``emulate(kernel, config=None)`` constructs a fresh default
        # GPUConfig; its reads must not leak into the trace footprint
        # beyond the genuine TRACE_FIELDS (checked via exactness above)
        # — and simt_width specifically must stay out everywhere.
        for result in report.stages:
            assert "simt_width" not in result.inferred, result.stage

    def test_seeded_regression_is_caught(self, index, monkeypatch):
        # Narrow the oracle declaration behind depcheck's back: the
        # diff must flag every dropped-but-read field as an error.
        import repro.pipeline.stages as stages_mod

        broken = StageSpec(
            "oracle",
            inputs=("trace",),
            config_fields=ORACLE_FIELDS - frozenset({"n_mshrs"}),
            description=STAGES["oracle"].description,
        )
        monkeypatch.setitem(stages_mod.STAGES, "oracle", broken)
        rep = analyze_stage_deps(index)
        errors = [
            d for d in rep.errors
            if d.stage == "oracle"
            and d.check_id == "depcheck-undeclared-read"
        ]
        assert len(errors) == 1 and "n_mshrs" in errors[0].message

    def test_seeded_over_declaration_is_caught(self, index, monkeypatch):
        import repro.pipeline.stages as stages_mod

        padded = StageSpec(
            "trace",
            inputs=(),
            config_fields=TRACE_FIELDS | frozenset({"n_mshrs"}),
            description=STAGES["trace"].description,
        )
        monkeypatch.setitem(stages_mod.STAGES, "trace", padded)
        rep = analyze_stage_deps(index)
        warnings = [
            d for d in rep.warnings
            if d.stage == "trace"
            and d.check_id == "depcheck-over-declared"
        ]
        assert len(warnings) == 1 and "n_mshrs" in warnings[0].message

    def test_inference_is_deterministic(self, index):
        first = infer_stage_reads(index)
        second = infer_stage_reads(index)
        assert {s: r.reads for s, r in first.items()} == {
            s: r.reads for s, r in second.items()
        }


class TestKeyInputs:
    def test_default_key_inputs_are_inputs(self):
        assert STAGES["xcheck"].effective_key_inputs == ("trace", "costmodel")

    def test_predict_keys_only_on_trace(self):
        # predict's key carries the trace key but NOT the clustering
        # key; everything else must be declared directly.
        assert STAGES["predict"].effective_key_inputs == ("trace",)

    def test_predict_declares_unkeyed_input_coverage(self):
        assert CACHE_SIM_FIELDS <= PREDICT_FIELDS
        assert LATENCY_FIELDS <= PREDICT_FIELDS
        assert PROFILE_FIELDS <= PREDICT_FIELDS


# ---------------------------------------------------------------------------
# Runtime access sanitizer
# ---------------------------------------------------------------------------


class TestRecordingConfig:
    def test_transparent_equality_and_fingerprint(self):
        config = GPUConfig.small()
        proxy = recording_config(config)
        assert isinstance(proxy, AccessRecordingConfig)
        assert proxy == config
        assert proxy.fingerprint(ALL_FIELDS) == config.fingerprint(
            ALL_FIELDS
        )

    def test_wrap_is_idempotent(self):
        proxy = recording_config(GPUConfig())
        assert recording_config(proxy) is proxy

    def test_with_preserves_recording_class(self):
        proxy = recording_config(GPUConfig())
        derived = proxy.with_(scheduler="gto")
        assert isinstance(derived, AccessRecordingConfig)
        assert derived.scheduler == "gto"

    def test_pickle_roundtrip(self):
        proxy = recording_config(GPUConfig.small())
        clone = pickle.loads(pickle.dumps(proxy))
        assert isinstance(clone, AccessRecordingConfig)
        assert clone == proxy

    def test_records_only_inside_window(self):
        clear_recorded()
        proxy = recording_config(GPUConfig())
        proxy.n_cores  # outside any window: not recorded
        with record_stage("demo") as reads:
            proxy.warp_size
            proxy.scheduler
        proxy.l1_size  # after the window: not recorded
        assert reads == {"warp_size", "scheduler"}
        assert recorded_reads()["demo"] == frozenset(
            {"warp_size", "scheduler"}
        )
        clear_recorded()

    def test_property_reads_attribute_base_fields(self):
        proxy = recording_config(GPUConfig())
        with record_stage("demo-prop") as reads:
            proxy.max_warps_per_core
        assert {"max_threads_per_core", "warp_size"} <= reads
        clear_recorded()

    def test_windows_nest_innermost_wins(self):
        proxy = recording_config(GPUConfig())
        with record_stage("outer") as outer:
            proxy.n_cores
            with record_stage("inner") as inner:
                proxy.warp_size
        assert "warp_size" in inner and "warp_size" not in outer
        assert "n_cores" in outer
        clear_recorded()


class TestPipelineIntegration:
    def test_sanitized_run_stays_within_static_inference(
        self, report, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DEPCHECK", "1")
        metrics = MetricsRegistry()
        pipeline = Pipeline(
            GPUConfig.small(), scale=Scale.tiny(), metrics=metrics
        )
        pipeline.evaluate("vectoradd")
        pipeline.crosscheck("vectoradd")
        observed = reads_from_metrics(metrics)
        assert observed, "sanitizer recorded nothing"
        assert check_runtime(observed, report, ["vectoradd"]) == []
        for stage, reads in observed.items():
            result = report.stage_result(stage)
            assert reads <= result.inferred, (stage, reads)
            assert reads <= result.effective_coverage, (stage, reads)

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEPCHECK", raising=False)
        metrics = MetricsRegistry()
        pipeline = Pipeline(
            GPUConfig.small(), scale=Scale.tiny(), metrics=metrics
        )
        pipeline.trace("vectoradd")
        assert reads_from_metrics(metrics) == {}

    def test_sanitized_results_bitwise_identical(self, monkeypatch):
        base = Pipeline(GPUConfig.small(), scale=Scale.tiny())
        plain = base.evaluate("vectoradd")
        monkeypatch.setenv("REPRO_DEPCHECK", "1")
        sanitized = Pipeline(
            GPUConfig.small(), scale=Scale.tiny()
        ).evaluate("vectoradd")
        assert sanitized.oracle_cpi == plain.oracle_cpi
        assert sanitized.model_cpis == plain.model_cpis


class TestCheckRuntime:
    def test_escape_outside_inference_is_error(self, report):
        observed = {"trace": frozenset({"n_mshrs"})}
        diagnostics = check_runtime(observed, report)
        kinds = {d.check_id for d in diagnostics}
        assert "depcheck-runtime-escape" in kinds
        assert "depcheck-runtime-unsound" in kinds
        assert all(d.severity is Severity.ERROR for d in diagnostics)

    def test_covered_read_is_clean(self, report):
        # A field inside both the inferred set and the key coverage.
        observed = {"trace": frozenset({"warp_size"})}
        assert check_runtime(observed, report) == []

    def test_unknown_stage_ignored(self, report):
        assert check_runtime({"nope": frozenset({"warp_size"})},
                             report) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_depcheck_text_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["depcheck"]) == 0
        out = capsys.readouterr().out
        assert "depcheck: clean" in out

    def test_depcheck_json_payload(self, capsys):
        import json

        from repro.cli import main

        assert main(["depcheck", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_errors"] == 0
        assert {s["stage"] for s in payload["stages"]} == set(STAGES)


# ---------------------------------------------------------------------------
# Arch-dispatch completeness
# ---------------------------------------------------------------------------


class TestArchBypass:
    def test_hook_implementations_derived(self, index):
        from repro.depcheck.stagedeps import _hook_implementations

        impls = _hook_implementations(index)
        # The interface delegates contention modeling and interval
        # construction to implementations outside repro.arch; those are
        # exactly what stage code must not call directly.
        assert any("contention" in q for q in impls)
        assert any("interval" in q for q in impls)

    def test_no_bypass_in_stage_closures(self, report):
        assert [
            d for d in report.diagnostics
            if d.check_id == "depcheck-arch-bypass"
        ] == []


def test_runtime_sweep_env_restored():
    from repro.depcheck.runtime import runtime_sweep

    os.environ.pop("REPRO_DEPCHECK", None)
    observed, kernels = runtime_sweep(kernels=["vectoradd"])
    assert kernels == ["vectoradd"]
    assert "oracle" in observed
    assert os.environ.get("REPRO_DEPCHECK") is None
