"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.cache import Cache


def small_cache(assoc=2, n_sets=4, line=128):
    return Cache(size=assoc * n_sets * line, assoc=assoc, line_size=line)


class TestGeometry:
    def test_set_count(self):
        cache = Cache(size=32 * 1024, assoc=8, line_size=128)
        assert cache.n_sets == 32

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            Cache(size=1024, assoc=2, line_size=100)

    def test_size_must_divide(self):
        with pytest.raises(ValueError):
            Cache(size=1000, assoc=2, line_size=128)

    def test_repr_mentions_geometry(self):
        assert "8-way" in repr(Cache(size=32 * 1024, assoc=8, line_size=128))


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_same_line_different_bytes_hit(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(127) is True
        assert cache.access(128) is False

    def test_lru_eviction(self):
        cache = small_cache(assoc=2, n_sets=1)
        a, b, c = 0, 128, 256  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_access_refreshes_recency(self):
        cache = small_cache(assoc=2, n_sets=1)
        a, b, c = 0, 128, 256
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a; b is now LRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_sets_are_independent(self):
        cache = small_cache(assoc=1, n_sets=2, line=128)
        cache.access(0)  # set 0
        cache.access(128)  # set 1
        assert cache.access(0) is True
        assert cache.access(128) is True

    def test_write_no_allocate(self):
        cache = small_cache()
        assert cache.access(0, is_write=True) is False
        assert cache.access(0) is False  # store did not install

    def test_write_hits_refresh(self):
        cache = small_cache(assoc=2, n_sets=1)
        a, b, c = 0, 128, 256
        cache.access(a)
        cache.access(b)
        cache.access(a, is_write=True)  # refresh a via store hit
        cache.access(c)  # evicts b
        assert cache.access(a) is True

    def test_write_allocate_mode(self):
        cache = Cache(size=1024, assoc=2, line_size=128,
                      allocate_on_write=True)
        cache.access(0, is_write=True)
        assert cache.access(0) is True

    def test_probe_does_not_mutate(self):
        cache = small_cache(assoc=2, n_sets=1)
        a, b, c = 0, 128, 256
        cache.access(a)
        cache.access(b)
        assert cache.probe(a) is True
        assert cache.probe(c) is False
        accesses = cache.n_accesses
        cache.probe(a)
        assert cache.n_accesses == accesses

    def test_flush(self):
        cache = small_cache()
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)
        assert Cache(1024, 2, 128).miss_rate == 0.0


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 20), min_size=1,
                    max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = small_cache(assoc=2, n_sets=4)
        for addr in addrs:
            cache.access(addr * 64)
        total = sum(len(s) for s in cache._sets)
        assert total <= cache.assoc * cache.n_sets
        assert all(len(s) <= cache.assoc for s in cache._sets)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=300))
    def test_working_set_within_capacity_never_misses_twice(self, addrs):
        # 64 lines of capacity, fully-associative equivalent per set is not
        # guaranteed, so use a single-set fully-associative cache.
        cache = Cache(size=64 * 128, assoc=64, line_size=128)
        misses = 0
        for addr in addrs:
            if not cache.access(addr * 128):
                misses += 1
        assert misses == len(set(addrs))

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 20), min_size=1,
                    max_size=200))
    def test_counters_consistent(self, addrs):
        cache = small_cache()
        for addr in addrs:
            cache.access(addr)
        assert cache.n_accesses == len(addrs)
        assert 0 <= cache.n_misses <= cache.n_accesses
