"""Shared fixtures: small machine configs and hand-built kernels."""

from __future__ import annotations

import pytest

from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.trace import emulate
from repro.workloads import Scale


@pytest.fixture
def config():
    """A small 2-core machine, 8 warps/core — fast to simulate."""
    return GPUConfig.small(n_cores=2, warps_per_core=8)


@pytest.fixture
def one_core_config():
    """Single-core machine for exact-cycle assertions."""
    return GPUConfig.small(n_cores=1, warps_per_core=8)


@pytest.fixture
def tiny_scale():
    return Scale.tiny()


def build_saxpy(n_threads=128, block_size=64):
    """saxpy: two coalesced loads, an FMA, a coalesced store."""
    b = KernelBuilder("saxpy")
    tid = b.tid()
    offset = b.imul(tid, 4)
    x = b.ld(b.iadd(offset, 0x10000))
    y = b.ld(b.iadd(offset, 0x20000))
    b.st(b.iadd(offset, 0x30000), b.ffma(x, 2.0, y))
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


def build_divergent_load(n_threads=128, block_size=64, stride=512):
    """One fully divergent load per thread (stride >= line size)."""
    b = KernelBuilder("divload")
    tid = b.tid()
    addr = b.iadd(b.imul(tid, stride), 0x100000)
    value = b.ld(addr)
    b.st(addr, b.fadd(value, 1.0), offset=0x4000000)
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


def build_fp_chain(length=8, n_threads=64, block_size=64):
    """A dependent FP chain: every instruction stalls on the previous."""
    b = KernelBuilder("fpchain")
    acc = b.mov(1.0)
    for _ in range(length):
        acc = b.fmul(acc, 1.5, dst=acc)
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


@pytest.fixture
def saxpy_trace(config):
    return emulate(build_saxpy(), config)
