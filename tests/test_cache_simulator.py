"""Unit tests for the functional cache simulator (per-PC distributions)."""

import pytest

from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.memory import MissEvent, simulate_caches
from repro.memory.cache_simulator import core_of_block
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace import emulate


def run(build_fn, n_threads=256, block_size=64, config=None):
    config = config or GPUConfig.small(n_cores=2, warps_per_core=8)
    b = KernelBuilder("k")
    build_fn(b)
    b.exit()
    kernel = b.build(n_threads=n_threads, block_size=block_size)
    trace = emulate(kernel, config)
    return simulate_caches(trace, config), config


class TestHierarchy:
    def test_event_ordering_by_latency(self):
        assert MissEvent.L1_HIT < MissEvent.L2_HIT < MissEvent.L2_MISS

    def test_event_latency_keys(self):
        config = GPUConfig()
        hierarchy = MemoryHierarchy(config)
        assert hierarchy.event_latency(MissEvent.L1_HIT) == 25
        assert hierarchy.event_latency(MissEvent.L2_MISS) == 420

    def test_l1_private_l2_shared(self):
        config = GPUConfig.small(n_cores=2)
        hierarchy = MemoryHierarchy(config)
        assert hierarchy.access(0, 0x1000) is MissEvent.L2_MISS
        # Other core: misses its own L1 but hits the shared L2.
        assert hierarchy.access(1, 0x1000) is MissEvent.L2_HIT
        # Same core again: L1 hit.
        assert hierarchy.access(0, 0x1000) is MissEvent.L1_HIT

    def test_core_bounds_checked(self):
        hierarchy = MemoryHierarchy(GPUConfig.small(n_cores=2))
        with pytest.raises(IndexError):
            hierarchy.access(2, 0)


class TestCoreAssignment:
    def test_round_robin_blocks(self):
        assert [core_of_block(b, 4) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


class TestPerPCStats:
    def test_streaming_load_all_l2_misses(self):
        def build(b):
            b.ld(b.iadd(b.imul(b.tid(), 4), 0x100000))

        result, config = run(build)
        (pc,) = result.load_pcs()
        stats = result.stats_for(pc)
        assert stats.inst_event_fraction(MissEvent.L2_MISS) == 1.0
        assert stats.amat(config) == config.l2_miss_latency

    def test_repeated_load_hits_l1(self):
        def build(b):
            addr = b.iadd(b.imul(b.tid(), 4), 0x100000)
            b.ld(addr)
            b.ld(addr)

        result, config = run(build)
        first, second = result.load_pcs()
        assert result.stats_for(second).inst_event_fraction(
            MissEvent.L1_HIT
        ) == 1.0
        assert result.stats_for(second).amat(config) == config.l1_latency

    def test_mixed_distribution_amat(self):
        # One load whose two dynamic executions differ: cold miss then hit.
        def build(b):
            addr = b.imul(b.imod(b.tid(), 32), 4)  # same line set per warp
            counter = b.mov(0)
            head = b.loop_begin()
            b.ld(addr)
            counter = b.iadd(counter, 1, dst=counter)
            pred = b.setp_lt(counter, 2)
            b.loop_end(head, pred)

        result, config = run(build, n_threads=32, block_size=32)
        (pc,) = result.load_pcs()
        stats = result.stats_for(pc)
        assert stats.n_insts == 2
        expected = 0.5 * config.l2_miss_latency + 0.5 * config.l1_latency
        assert stats.amat(config) == pytest.approx(expected)

    def test_divergent_instruction_event_is_worst_request(self):
        # First load warms one line; second load touches the warm line and
        # a cold line -> instruction event must be the slower (L2 miss).
        def build(b):
            lane = b.lane()
            b.ld(b.mov(0x100000))  # warm line for all lanes
            addr = b.iadd(b.imul(lane, 0x100000), 0x100000)
            pred = b.setp_lt(lane, 2)
            with b.if_(pred):
                b.ld(addr)  # lane 0 warm, lane 1 cold

        result, _ = run(build, n_threads=32, block_size=32)
        pcs = result.load_pcs()
        stats = result.stats_for(pcs[-1])
        assert stats.inst_event_fraction(MissEvent.L2_MISS) == 1.0
        # Request-level distribution still sees the L1 hit.
        assert stats.req_events[MissEvent.L1_HIT] == 1

    def test_store_pcs_classified(self):
        def build(b):
            addr = b.iadd(b.imul(b.tid(), 4), 0x100000)
            b.st(addr, 1.0)

        result, _ = run(build)
        assert result.load_pcs() == []
        assert len(result.store_pcs()) == 1

    def test_requests_per_inst_tracks_divergence(self):
        def build(b):
            b.ld(b.imul(b.tid(), 512))

        result, _ = run(build, n_threads=32, block_size=32)
        (pc,) = result.load_pcs()
        assert result.stats_for(pc).avg_requests_per_inst == 32.0


class TestAvgMissLatency:
    def test_all_dram_misses(self):
        def build(b):
            b.ld(b.iadd(b.imul(b.tid(), 4), 0x100000))

        result, config = run(build)
        assert result.avg_miss_latency(config) == config.l2_miss_latency

    def test_no_memory_instructions_defaults(self):
        def build(b):
            b.fadd(1.0, 2.0)

        result, config = run(build)
        assert result.avg_miss_latency(config) == config.l2_miss_latency
