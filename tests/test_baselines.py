"""Unit tests for the Naive_Interval and Markov_Chain baselines."""

import pytest

from repro.baselines.markov import markov_chain_cpi, markov_warp_activation
from repro.baselines.naive import naive_interval_cpi
from repro.core.interval import Interval, IntervalProfile


def profile_of(intervals):
    p = IntervalProfile(warp_id=0)
    p.intervals.extend(intervals)
    return p


class TestNaive:
    def test_eq1_inverse_scaling(self):
        profile = profile_of([Interval(n_insts=2, stall_cycles=38.0)])
        # single-warp CPI = 40/2 = 20; 4 warps -> 5.
        assert naive_interval_cpi(profile, 4) == pytest.approx(5.0)

    def test_cap_at_issue_rate(self):
        profile = profile_of([Interval(n_insts=2, stall_cycles=38.0)])
        assert naive_interval_cpi(profile, 1000) == 1.0

    def test_empty_profile(self):
        assert naive_interval_cpi(IntervalProfile(warp_id=0), 4) == 0.0

    def test_rejects_bad_warps(self):
        with pytest.raises(ValueError):
            naive_interval_cpi(profile_of([Interval(1, 1.0)]), 0)


class TestMarkov:
    def test_activation_probability(self):
        # p*M = 1 -> warp active half the time.
        assert markov_warp_activation(0.1, 10.0) == pytest.approx(0.5)
        assert markov_warp_activation(0.0, 10.0) == 1.0

    def test_never_stalling_warp_is_issue_bound(self):
        profile = profile_of([Interval(n_insts=50, stall_cycles=0.0)])
        assert markov_chain_cpi(profile, 8) == 1.0

    def test_single_warp_matches_formula(self):
        profile = profile_of([Interval(n_insts=10, stall_cycles=90.0)])
        # p = 1/10, M = 90: activation = 1/(1+9) = 0.1 -> IPC 0.1, CPI 10.
        assert markov_chain_cpi(profile, 1) == pytest.approx(10.0)

    def test_many_warps_approach_issue_bound(self):
        profile = profile_of([Interval(n_insts=10, stall_cycles=90.0)])
        cpis = [markov_chain_cpi(profile, n) for n in (1, 2, 8, 64)]
        assert cpis == sorted(cpis, reverse=True)
        assert cpis[-1] == pytest.approx(1.0, rel=2e-3)

    def test_cpi_always_at_least_one(self):
        profile = profile_of([Interval(n_insts=10, stall_cycles=5.0)])
        for n in (1, 4, 32, 256):
            assert markov_chain_cpi(profile, n) >= 1.0

    def test_trailing_stall_free_interval_not_counted(self):
        # One stalling interval plus the trailing one: p uses only the
        # stalling interval.
        profile = profile_of(
            [Interval(n_insts=5, stall_cycles=45.0),
             Interval(n_insts=5, stall_cycles=0.0)]
        )
        # p = 1/10, M = 45 -> a = 1/(1+4.5); CPI(1 warp) = 5.5.
        assert markov_chain_cpi(profile, 1) == pytest.approx(5.5)

    def test_rejects_bad_warps(self):
        with pytest.raises(ValueError):
            markov_chain_cpi(profile_of([Interval(1, 1.0)]), 0)

    def test_empty_profile(self):
        assert markov_chain_cpi(IntervalProfile(warp_id=0), 4) == 0.0
