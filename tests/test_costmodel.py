"""Tests for the static cost model: affine domain, trip counts, accesses."""

import pytest

from repro.config import GPUConfig
from repro.isa import Imm, KernelBuilder, Special
from repro.staticcheck import ControlFlowGraph, analyze_kernel, analyze_program
from repro.staticcheck.costmodel import (
    AccessClass,
    Affine,
    Interval,
    affine_environments,
    classify_accesses,
    find_loops,
    infer_trip_counts,
)
from repro.trace.emulator import emulate
from repro.workloads.generators import Scale, matmul_smem_tiled
from repro.workloads.suite import SUITE, kernel_names

#: Suite kernels whose loop bounds are data-dependent (loaded from
#: memory or escape-time), so their trips can only be bounded [1, inf).
DATA_DEPENDENT = {"bfs_kernel1", "bfs_parboil", "mandelbrot", "spmv_jds"}


class TestAffine:
    def test_normalisation_drops_zero_coefficients(self):
        a = Affine.symbol("tid", 4)
        b = Affine.symbol("tid", -4)
        assert (a + b) == Affine.constant(0)
        assert Affine.symbol("tid", 0) == Affine.constant(0)

    def test_structural_equality_is_semantic(self):
        a = Affine.constant(3) + Affine.symbol("tid", 2)
        b = Affine.symbol("tid", 2) + Affine.constant(3)
        assert a == b
        assert a.coeff("tid") == 2
        assert a.coeff("lane") == 0

    def test_arithmetic(self):
        a = Affine.constant(1) + Affine.symbol("tid", 4)
        b = Affine.constant(2) + Affine.symbol("warp", 3)
        total = a + b
        assert total.const == 3
        assert total.coeff("tid") == 4
        assert total.coeff("warp") == 3
        assert (a - a) == Affine.constant(0)
        assert (-a).coeff("tid") == -4
        assert a.scale(3).coeff("tid") == 12
        assert a.scale(0) == Affine.constant(0)

    def test_substitute(self):
        a = Affine.constant(5) + Affine.symbol("ntid", 2)
        assert a.substitute("ntid", Affine.constant(64)) == Affine.constant(133)
        # Substituting an absent symbol is the identity.
        assert a.substitute("tid", Affine.constant(9)) == a
        # Affine-for-symbol substitution distributes the coefficient.
        sub = a.substitute("ntid", Affine.symbol("tid", 1) + Affine.constant(1))
        assert sub.const == 7
        assert sub.coeff("tid") == 2

    def test_render(self):
        assert Affine.constant(0).render() == "0"
        assert (Affine.constant(2) + Affine.symbol("tid", 4)).render() == "2 + 4*tid"
        assert Affine.symbol("lane").render() == "lane"


class TestInterval:
    def test_exact(self):
        assert Interval.exact(3).is_exact
        assert not Interval(1, 4).is_exact
        assert not Interval(1, None).is_exact

    def test_contains(self):
        assert Interval(2, 5).contains(2)
        assert Interval(2, 5).contains(5)
        assert not Interval(2, 5).contains(6)
        assert Interval(2, None).contains(10**9)
        assert not Interval(2, None).contains(1)

    def test_arithmetic_and_union(self):
        assert Interval(1, 2) + Interval(3, 4) == Interval(4, 6)
        assert Interval(1, 2) + Interval(3, None) == Interval(4, None)
        assert Interval(2, 3) * Interval(4, 5) == Interval(8, 15)
        assert Interval(1, 2).union(Interval(5, None)) == Interval(1, None)
        assert Interval(1, 2).union(Interval(0, 9)) == Interval(0, 9)

    def test_render(self):
        assert Interval.exact(7).render() == "7"
        assert Interval(1, None).render() == "[1, inf]"
        assert Interval(0, 4).render() == "[0, 4]"


def _counted_loop(cmp_method, bound, step=1, start=0):
    """A do-while loop counting ``start`` upward by ``step`` while
    ``cmp(counter, bound)`` holds; stores the counter each iteration."""
    kb = KernelBuilder("loop")
    counter = kb.mov(start)
    head = kb.loop_begin()
    kb.st(Imm(4096), counter)
    kb.iadd(counter, step, dst=counter)
    pred = getattr(kb, cmp_method)(counter, bound)
    kb.loop_end(head, pred)
    kb.exit()
    return kb.build(n_threads=32, block_size=32)


def _analyzed_loops(kernel):
    cfg = ControlFlowGraph(kernel.program)
    loops = find_loops(cfg)
    envs = affine_environments(cfg, loops)
    return infer_trip_counts(cfg, loops, envs)


class TestTripCounts:
    @pytest.mark.parametrize(
        "cmp_method,bound,expected",
        [
            ("setp_lt", 10, 10),  # i=1..; continue while i < 10
            ("setp_le", 10, 11),
            ("setp_ne", 5, 5),
            ("setp_gt", 0, 1),  # 1 > 0 holds... counts up, never fails?
        ],
    )
    def test_closed_forms(self, cmp_method, bound, expected):
        if cmp_method == "setp_gt":
            # Counting upward while i > 0 never terminates statically:
            # the bound degrades to unbounded, not a wrong exact value.
            loops = _analyzed_loops(_counted_loop(cmp_method, bound))
            assert loops[0].trip == Interval(1, None)
            return
        loops = _analyzed_loops(_counted_loop(cmp_method, bound))
        assert len(loops) == 1
        assert loops[0].trip == Interval.exact(expected)

    def test_downward_gt_loop(self):
        # Count 10 downward while i > 0: exactly 10 body executions.
        loops = _analyzed_loops(
            _counted_loop("setp_gt", 0, step=-1, start=10)
        )
        assert loops[0].trip == Interval.exact(10)

    def test_ge_downward(self):
        loops = _analyzed_loops(
            _counted_loop("setp_ge", 0, step=-1, start=10)
        )
        assert loops[0].trip == Interval.exact(11)

    def test_strided_step(self):
        # 0, 3, 6, ... while i < 10 -> i after increment: 3,6,9,12.
        # Fails at 12 (4th body execution): trip 4.
        loops = _analyzed_loops(_counted_loop("setp_lt", 10, step=3))
        assert loops[0].trip == Interval.exact(4)

    def test_data_dependent_bound_is_unbounded(self):
        kb = KernelBuilder("dyn")
        bound = kb.ld(Imm(0))
        counter = kb.mov(0)
        head = kb.loop_begin()
        kb.iadd(counter, 1, dst=counter)
        pred = kb.setp_lt(counter, bound)
        kb.loop_end(head, pred)
        kb.exit()
        loops = _analyzed_loops(kb.build(n_threads=32, block_size=32))
        assert len(loops) == 1
        assert loops[0].trip == Interval(1, None)

    def test_tid_dependent_bound_is_unbounded_and_divergent(self):
        kb = KernelBuilder("perthread")
        counter = kb.mov(0)
        head = kb.loop_begin()
        kb.iadd(counter, 1, dst=counter)
        pred = kb.setp_lt(counter, Special.TID)
        kb.loop_end(head, pred)
        kb.exit()
        loops = _analyzed_loops(kb.build(n_threads=32, block_size=32))
        assert loops[0].trip == Interval(1, None)
        assert loops[0].divergent

    def test_uniform_loop_not_divergent(self):
        loops = _analyzed_loops(_counted_loop("setp_lt", 8))
        assert not loops[0].divergent

    def test_ntid_substitution(self):
        # Bound expressed via the ntid special: exact once the block
        # size is substituted in by analyze_kernel.
        kb = KernelBuilder("ntid_loop")
        counter = kb.mov(0)
        head = kb.loop_begin()
        kb.iadd(counter, 32, dst=counter)
        pred = kb.setp_lt(counter, kb.ntid())
        kb.loop_end(head, pred)
        kb.exit()
        kernel = kb.build(n_threads=128, block_size=128)
        cost = analyze_kernel(kernel)
        assert cost.loops[0].trip == Interval.exact(4)

    def test_nested_loops(self):
        kb = KernelBuilder("nested")
        i = kb.mov(0)
        outer = kb.loop_begin()
        j = kb.mov(0)
        inner = kb.loop_begin()
        kb.iadd(j, 1, dst=j)
        kb.loop_end(inner, kb.setp_lt(j, 3))
        kb.iadd(i, 1, dst=i)
        kb.loop_end(outer, kb.setp_lt(i, 5))
        kb.exit()
        loops = _analyzed_loops(kb.build(n_threads=32, block_size=32))
        trips = {loop.head: loop.trip for loop in loops}
        assert sorted(trips.values(), key=lambda t: t.lo) == [
            Interval.exact(3), Interval.exact(5),
        ]

    def test_execution_counts_multiply_across_nesting(self):
        kb = KernelBuilder("nested_counts")
        i = kb.mov(0)
        outer = kb.loop_begin()
        j = kb.mov(0)
        inner = kb.loop_begin()
        store_pc = kb.pc
        kb.st(Imm(4096), j)
        kb.iadd(j, 1, dst=j)
        kb.loop_end(inner, kb.setp_lt(j, 3))
        kb.iadd(i, 1, dst=i)
        kb.loop_end(outer, kb.setp_lt(i, 5))
        kb.exit()
        cost = analyze_kernel(kb.build(n_threads=32, block_size=32))
        assert cost.counts[store_pc] == Interval.exact(15)

    def test_if_region_gets_zero_floor(self):
        kb = KernelBuilder("guarded")
        pred = kb.setp_lt(kb.lane(), 8)
        with kb.if_(pred):
            store_pc = kb.pc
            kb.st(Imm(4096), pred)
        kb.exit()
        cost = analyze_kernel(kb.build(n_threads=32, block_size=32))
        assert cost.counts[store_pc].lo == 0


class TestAccessClassification:
    def _accesses(self, kernel, config=None):
        config = config or GPUConfig()
        cfg = ControlFlowGraph(kernel.program)
        loops = find_loops(cfg)
        envs = affine_environments(cfg, loops)
        return classify_accesses(cfg, envs, config)

    def test_unit_stride_is_coalesced(self):
        kb = KernelBuilder("coal")
        addr = kb.imul(kb.tid(), 4)
        kb.ld(kb.iadd(addr, 8192))
        kb.exit()
        (access,) = self._accesses(kb.build(n_threads=64, block_size=64))
        assert access.access_class is AccessClass.COALESCED
        assert access.phase_known
        assert access.transactions == Interval.exact(1)

    def test_broadcast_is_coalesced(self):
        kb = KernelBuilder("bcast")
        kb.ld(Imm(8192))
        kb.exit()
        (access,) = self._accesses(kb.build(n_threads=32, block_size=32))
        assert access.access_class is AccessClass.COALESCED
        assert access.lane_stride == 0
        assert access.transactions == Interval.exact(1)

    @pytest.mark.parametrize("stride_words,expected_tx", [(2, 2), (8, 8), (32, 32)])
    def test_strided(self, stride_words, expected_tx):
        kb = KernelBuilder("strided")
        addr = kb.imul(kb.tid(), 4 * stride_words)
        kb.ld(kb.iadd(addr, 8192))
        kb.exit()
        (access,) = self._accesses(kb.build(n_threads=32, block_size=32))
        assert access.access_class is AccessClass.STRIDED
        assert access.transactions == Interval.exact(expected_tx)
        assert access.label == "strided-%d" % expected_tx

    def test_loaded_index_is_divergent(self):
        kb = KernelBuilder("gather")
        index = kb.ld(kb.iadd(kb.imul(kb.tid(), 4), 8192))
        kb.ld(kb.iadd(kb.imul(index, 4), 16384))
        kb.exit()
        accesses = self._accesses(kb.build(n_threads=32, block_size=32))
        gather = accesses[1]
        assert gather.access_class is AccessClass.DIVERGENT
        assert gather.affine is None
        assert not gather.phase_known
        assert gather.transactions == Interval(1, GPUConfig().warp_size)

    def test_unknown_phase_still_bounds(self):
        # A warp-dependent offset that is not a multiple of the line size
        # leaves the phase unknown, but a unit lane stride can straddle
        # at most two lines whatever the phase.
        kb = KernelBuilder("phased")
        addr = kb.iadd(kb.imul(kb.tid(), 4), kb.imul(kb.warpid(), 36))
        kb.ld(kb.iadd(addr, 8192))
        kb.exit()
        (access,) = self._accesses(kb.build(n_threads=64, block_size=64))
        assert not access.phase_known
        assert access.transactions == Interval(1, 2)
        assert access.access_class is AccessClass.COALESCED

    def test_store_flag(self):
        kb = KernelBuilder("st")
        kb.st(kb.iadd(kb.imul(kb.tid(), 4), 8192), Imm(0))
        kb.exit()
        (access,) = self._accesses(kb.build(n_threads=32, block_size=32))
        assert access.is_store


class TestBankConflicts:
    @pytest.mark.parametrize("stride_words,degree", [(1, 1), (2, 2), (32, 32)])
    def test_static_matches_dynamic(self, stride_words, degree):
        config = GPUConfig()
        kernel, memory = matmul_smem_tiled(
            "smem_cs%d" % stride_words, Scale.tiny(),
            conflict_stride_words=stride_words,
        )
        cost = analyze_kernel(kernel, config)
        shared = [a for a in cost.accesses if a.space == "shared"]
        assert shared, "tiled matmul must have shared-memory accesses"
        static_max = max(a.bank_conflict.hi for a in shared)
        assert static_max == degree

        trace = emulate(kernel, config, memory=memory)
        dynamic_max = max(
            int(warp.conflict.max()) for warp in trace.warps
        )
        assert dynamic_max == degree

        # Every per-instruction measurement falls inside its prediction.
        pcs = {a.pc: a for a in shared}
        for warp in trace.warps:
            for i, pc in enumerate(warp.pcs):
                access = pcs.get(int(pc))
                if access is None:
                    continue
                measured = int(warp.conflict[i])
                if (access.phase_known
                        and int(warp.active[i]) == config.warp_size):
                    assert access.bank_conflict.contains(measured)


class TestSuiteAgreement:
    """Satellite: the static classifier against the dynamic coalescer,
    kernel by kernel over the whole workload suite."""

    @pytest.mark.parametrize("name", kernel_names())
    def test_transactions_match_dynamic_coalescer(self, name):
        config = GPUConfig()
        kernel, memory = SUITE[name].build(Scale.tiny())
        cost = analyze_kernel(kernel, config)
        trace = emulate(kernel, config, memory=memory)
        accesses = {a.pc: a for a in cost.accesses if a.space == "global"}
        checked = 0
        for warp in trace.warps:
            requests = warp.requests_per_inst
            for i, pc in enumerate(warp.pcs):
                access = accesses.get(int(pc))
                if access is None:
                    continue
                measured = int(requests[i])
                exactable = (
                    access.phase_known
                    and not access.under_divergent_control
                    and int(warp.active[i]) == config.warp_size
                )
                if exactable:
                    # Proven phase + full mask: the static class must
                    # match the measured transaction count exactly.
                    assert access.transactions.is_exact
                    assert measured == access.transactions.lo, (
                        "%s pc %d: measured %d, predicted %s (%s)"
                        % (name, pc, measured,
                           access.transactions.render(), access.label)
                    )
                else:
                    hi = access.transactions.hi
                    hi = config.warp_size if hi is None else hi
                    assert 1 <= measured <= hi
                checked += 1
        if accesses:
            assert checked > 0

    @pytest.mark.parametrize("name", kernel_names())
    def test_affine_loop_trips_are_exact(self, name):
        kernel, _ = SUITE[name].build(Scale.tiny())
        cost = analyze_kernel(kernel)
        if name in DATA_DEPENDENT:
            assert any(not loop.trip.is_exact for loop in cost.loops)
        else:
            for loop in cost.loops:
                assert loop.trip.is_exact, (
                    "%s loop @%d: trip %s not exact"
                    % (name, loop.head, loop.trip.render())
                )


class TestKernelCostModel:
    def test_vectoradd_shape(self):
        kernel, _ = SUITE["vectoradd"].build(Scale.tiny())
        cost = analyze_kernel(kernel)
        assert cost.kernel == "vectoradd"
        assert cost.n_static_insts == len(kernel.program)
        assert len(cost.exact_loops) == len(cost.loops) == 1
        assert not cost.divergent_branches
        assert all(
            a.access_class is AccessClass.COALESCED for a in cost.accesses
        )
        assert cost.insts_per_warp.is_exact
        assert cost.cpi_lower_bound >= 1.0 / GPUConfig().issue_width

    def test_occupancy(self):
        kernel, _ = SUITE["vectoradd"].build(Scale.tiny())
        config = GPUConfig()
        cost = analyze_kernel(kernel, config)
        blocks = config.max_threads_per_core // kernel.block_size
        warps = min(
            blocks * kernel.warps_per_block, config.max_warps_per_core
        )
        assert cost.resident_blocks_per_core == blocks
        assert cost.resident_warps_per_core == warps
        assert cost.occupancy == warps / config.max_warps_per_core

    def test_to_dict_roundtrips_through_json(self):
        import json

        kernel, _ = SUITE["strided_deg8"].build(Scale.tiny())
        cost = analyze_kernel(kernel)
        payload = json.loads(json.dumps(cost.to_dict()))
        assert payload["kernel"] == "strided_deg8"
        assert payload["loops"][0]["exact"]
        assert any(
            a["class"].startswith("strided-") for a in payload["accesses"]
        )

    def test_render_text_mentions_core_facts(self):
        kernel, _ = SUITE["vectoradd"].build(Scale.tiny())
        text = analyze_kernel(kernel).render_text()
        assert "cost model: vectoradd" in text
        assert "loop @" in text
        assert "coalesced" in text

    def test_empty_program(self):
        cost = analyze_program(())
        assert cost.n_static_insts == 0
        assert cost.insts_per_warp == Interval.exact(0)
        assert cost.loops == ()

    def test_skeleton_covers_reachable(self):
        kernel, _ = SUITE["vectoradd"].build(Scale.tiny())
        cost = analyze_kernel(kernel)
        assert len(cost.skeleton) == cost.n_reachable
        classes = {entry.stall_class for entry in cost.skeleton}
        assert classes <= {"ialu", "falu", "sfu", "mem", "smem", "sync"}
