"""Unit tests for the multithreading model (Sec. IV-A, Fig. 2/8)."""

import pytest

from repro.core.interval import Interval, IntervalProfile
from repro.core.multithreading import (
    model_multithreading,
    naive_multithreading_cpi,
    nonoverlapped_gto,
    nonoverlapped_rr,
    nonoverlapped_rr_lockstep,
)


def profile_of(intervals):
    p = IntervalProfile(warp_id=0)
    p.intervals.extend(intervals)
    return p


class TestPaperFigure2:
    """Interval 1 of Fig. 2: 1 instruction + 10 stall cycles, 3 warps."""

    def test_naive_matches_paper(self):
        profile = profile_of([Interval(n_insts=1, stall_cycles=10.0)])
        # Paper: core IPC = 3/11 -> CPI per core-instruction = 11/3.
        assert naive_multithreading_cpi(profile, 3) == pytest.approx(11 / 3)

    def test_rr_single_instruction_interval_has_no_waiting_slots(self):
        interval = Interval(n_insts=1, stall_cycles=10.0)
        assert nonoverlapped_rr(interval, issue_prob=1 / 11, n_warps=3) == 0.0

    def test_rr_equals_naive_when_no_waiting_slots(self):
        profile = profile_of([Interval(n_insts=1, stall_cycles=10.0)])
        result = model_multithreading(profile, 3, "rr")
        assert result.cpi == pytest.approx(11 / 3)


class TestPaperFigure8:
    """Fig. 8: one interval of 3 instructions + 6 stall cycles, 4 warps."""

    def interval(self):
        return Interval(n_insts=3, stall_cycles=6.0)

    def test_rr_nonoverlap_eq10_eq11(self):
        profile = profile_of([self.interval()])
        p = profile.issue_prob  # 3/9
        expected = p * (4 - 1) * (3 - 1)  # Eq. 11 with 2 waiting slots
        assert nonoverlapped_rr(self.interval(), p, 4) == pytest.approx(expected)

    def test_rr_lockstep_matches_figure_8a_count(self):
        """The figure itself counts 6 non-overlapped instructions for the
        aligned case — the lockstep form reproduces it exactly."""
        assert nonoverlapped_rr_lockstep(self.interval(), 4) == pytest.approx(
            6.0
        )

    def test_rr_lockstep_matches_figure_2_ipc(self):
        """Fig. 2's interval 1 (1 inst + 10 stalls, 3 warps): IPC 3/11."""
        profile = profile_of([Interval(n_insts=1, stall_cycles=10.0)])
        result = model_multithreading(profile, 3, "rr", rr_mode="lockstep")
        assert result.cpi == pytest.approx(11 / 3)

    def test_blended_between_extremes(self):
        profile = profile_of([self.interval()] * 3)
        lock = model_multithreading(profile, 4, "rr", rr_mode="lockstep").cpi
        prob = model_multithreading(
            profile, 4, "rr", rr_mode="probabilistic"
        ).cpi
        blend = model_multithreading(profile, 4, "rr", rr_mode="blended").cpi
        low, high = min(lock, prob), max(lock, prob)
        assert low - 1e-12 <= blend <= high + 1e-12

    def test_blended_alignment_extremes(self):
        profile = profile_of([self.interval()] * 2)
        lock = model_multithreading(profile, 4, "rr", rr_mode="lockstep").cpi
        prob = model_multithreading(
            profile, 4, "rr", rr_mode="probabilistic"
        ).cpi
        aligned = model_multithreading(
            profile, 4, "rr", rr_mode="blended", alignment=1.0
        ).cpi
        staggered = model_multithreading(
            profile, 4, "rr", rr_mode="blended", alignment=0.0
        ).cpi
        assert aligned == pytest.approx(lock)
        assert staggered == pytest.approx(prob)

    def test_invalid_rr_mode(self):
        profile = profile_of([self.interval()])
        with pytest.raises(ValueError):
            model_multithreading(profile, 4, "rr", rr_mode="chaotic")

    def test_gto_nonoverlap_eq12_16(self):
        profile = profile_of([self.interval()])
        p = profile.issue_prob  # 1/3
        avg = profile.avg_interval_insts  # 3
        # issue_prob_in_stall = min(1/3 * 6, 1) = 1
        # issued_in_stall = 3 * (1 * 3) = 9; nonoverlap = max(9 - 6, 0) = 3.
        assert nonoverlapped_gto(
            self.interval(), p, 4, avg, 1.0
        ) == pytest.approx(3.0)

    def test_gto_matches_figure_count(self):
        # The figure shows W3's 3 instructions not overlapping: 3.
        profile = profile_of([self.interval()])
        result = model_multithreading(profile, 4, "gto")
        assert result.total_nonoverlapped == pytest.approx(3.0)


class TestModelBehaviour:
    def test_single_warp_no_nonoverlap(self):
        profile = profile_of([Interval(n_insts=4, stall_cycles=20.0)])
        for policy in ("rr", "gto"):
            result = model_multithreading(profile, 1, policy)
            assert result.total_nonoverlapped == 0.0
            assert result.cpi == pytest.approx(profile.single_warp_cpi)

    def test_cpi_never_below_issue_bandwidth(self):
        profile = profile_of([Interval(n_insts=10, stall_cycles=5.0)])
        result = model_multithreading(profile, 64, "rr")
        assert result.cpi >= 1.0

    def test_more_warps_never_slower_per_core_inst(self):
        profile = profile_of(
            [Interval(n_insts=2, stall_cycles=30.0)] * 4
        )
        cpis = [
            model_multithreading(profile, n, "rr").cpi for n in (1, 2, 4, 8)
        ]
        assert cpis == sorted(cpis, reverse=True)

    def test_rr_at_least_naive(self):
        # Non-overlapped instructions only add cycles.
        profile = profile_of(
            [Interval(n_insts=5, stall_cycles=10.0)] * 3
        )
        for n in (2, 4, 8):
            rr = model_multithreading(profile, n, "rr").cpi
            assert rr >= naive_multithreading_cpi(profile, n) - 1e-12

    def test_gto_zero_stall_interval(self):
        interval = Interval(n_insts=5, stall_cycles=0.0)
        assert nonoverlapped_gto(interval, 0.5, 4, 5.0, 1.0) == 0.0

    def test_stretch_factor(self):
        profile = profile_of([Interval(n_insts=1, stall_cycles=10.0)])
        result = model_multithreading(profile, 3, "rr")
        assert result.stretch == pytest.approx(result.cpi / 11.0)

    def test_invalid_args(self):
        profile = profile_of([Interval(n_insts=1, stall_cycles=1.0)])
        with pytest.raises(ValueError):
            model_multithreading(profile, 0, "rr")
        with pytest.raises(ValueError):
            model_multithreading(profile, 2, "lrr")
        with pytest.raises(ValueError):
            naive_multithreading_cpi(profile, 0)

    def test_naive_cap_optional(self):
        from repro.baselines.naive import naive_interval_cpi

        profile = profile_of([Interval(n_insts=10, stall_cycles=10.0)])
        capped = naive_interval_cpi(profile, 64)
        uncapped = naive_interval_cpi(profile, 64, cap_at_issue_rate=False)
        assert capped == 1.0
        assert uncapped == pytest.approx(20.0 / 640.0)
