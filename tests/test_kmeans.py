"""Unit and property tests for the from-scratch k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.kmeans import kmeans


class TestKMeans:
    def test_two_obvious_clusters(self):
        points = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [5.0, 5.0], [5.1, 5.0]]
        )
        result = kmeans(points, k=2)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert result.largest_cluster == labels[0]

    def test_deterministic(self):
        rng = np.random.default_rng(42)
        points = rng.normal(size=(50, 2))
        a = kmeans(points, k=2)
        b = kmeans(points, k=2)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.centers, b.centers)

    def test_identical_points(self):
        points = np.ones((10, 2))
        result = kmeans(points, k=2)
        assert result.inertia == pytest.approx(0.0)
        sizes = result.cluster_sizes()
        assert sizes.sum() == 10

    def test_single_point(self):
        result = kmeans(np.array([[1.0, 2.0]]), k=2)
        assert result.labels[0] in (0, 1)

    def test_k_one(self):
        points = np.array([[0.0, 0.0], [2.0, 2.0]])
        result = kmeans(points, k=1)
        assert (result.labels == 0).all()
        assert result.centers[0] == pytest.approx([1.0, 1.0])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), k=2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=0)
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), k=2)


class TestKMeansProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        npst.arrays(
            np.float64,
            st.tuples(st.integers(2, 40), st.just(2)),
            elements=st.floats(min_value=-100, max_value=100,
                               allow_nan=False),
        )
    )
    def test_invariants(self, points):
        result = kmeans(points, k=2)
        n = len(points)
        assert result.labels.shape == (n,)
        assert set(np.unique(result.labels)) <= {0, 1}
        assert result.inertia >= 0.0
        assert result.cluster_sizes().sum() == n
        # Every point is assigned to its nearest centre.
        d = ((points[:, None, :] - result.centers[None]) ** 2).sum(axis=2)
        assert np.array_equal(np.argmin(d, axis=1), result.labels)

    @settings(deadline=None, max_examples=20)
    @given(
        npst.arrays(
            np.float64,
            st.tuples(st.integers(4, 30), st.just(2)),
            elements=st.floats(min_value=0, max_value=10, allow_nan=False),
        )
    )
    def test_inertia_no_worse_than_single_cluster(self, points):
        one = kmeans(points, k=1)
        two = kmeans(points, k=2)
        assert two.inertia <= one.inertia + 1e-9
