"""Shape tests for the paper's experiments (run at reduced scale).

These assert the *qualitative* results the paper reports — model
orderings, sweep directionality, CPI-stack composition — on a small
machine and tiny workload scale so the whole file runs in tens of
seconds.  EXPERIMENTS.md records the full-scale numbers.
"""

import pytest

from repro.config import GPUConfig
from repro.harness import experiments as ex
from repro.harness.runner import Runner
from repro.workloads import Scale


@pytest.fixture(scope="module")
def runner():
    # 16 warps/core gives enough contention for the model ladder to show.
    return Runner(GPUConfig.small(n_cores=2, warps_per_core=16), Scale.tiny())


class TestFigure4:
    def test_component_ladder_reduces_error(self, runner):
        result = ex.run_figure4(runner, kernel="strided_deg32")
        errors = result.data["errors"]
        # Adding contention modeling must improve on MT for a heavily
        # divergent kernel, and the full model must be decent.
        assert errors["mt_mshr"] < errors["mt"]
        assert errors["mt_mshr_band"] <= errors["mt_mshr"] + 1e-9
        assert errors["mt_mshr_band"] < 0.5
        assert "Figure 4" in result.text


class TestFigure7:
    def test_clustering_beats_worst_extreme(self, runner):
        result = ex.run_figure7(
            runner, kernels=["mandelbrot", "spmv_jds", "bfs_kernel1"]
        )
        means = result.data["means"]
        # Clustering should never be meaningfully worse than the better
        # extreme (at tiny scale the three can tie within noise).
        worst = max(means["max"], means["min"])
        assert means["clustering"] <= worst * 1.05 + 0.01
        assert "Clustering" in result.text


class TestFigures11and12:
    @pytest.mark.parametrize("policy", ["rr", "gto"])
    def test_gpumech_beats_baselines_on_average(self, runner, policy):
        kernels = [
            "vectoradd", "strided_deg32", "sad_calc_8",
            "kmeans_invert_mapping", "mandelbrot", "srad_kernel1",
        ]
        result = ex.run_model_comparison(runner, policy, kernels)
        means = result.data["means"]
        assert means["mt_mshr_band"] < means["naive"]
        assert means["mt_mshr_band"] < means["markov"]
        # The fraction of kernels under 20% error must be at least as
        # high for GPUMech as for the Markov chain (paper: 75% vs 50%).
        assert (
            result.data["gpumech_under_20"]
            >= result.data["markov_under_20"]
        )

    def test_figure11_and_12_wrappers(self, runner):
        kernels = ["vectoradd", "strided_deg32"]
        fig11 = ex.run_figure11(runner, kernels)
        fig12 = ex.run_figure12(runner, kernels)
        assert fig11.data["policy"] == "rr"
        assert fig12.data["policy"] == "gto"


class TestFigure13:
    def test_contention_models_win_at_high_warp_counts(self, runner):
        kernels = ["strided_deg32", "sad_calc_8"]
        result = ex.run_figure13(runner, kernels=kernels,
                                 warp_counts=(2, 8, 16))
        series = result.data["series"]
        # At the highest warp count the contention-free models degrade;
        # full GPUMech must beat Naive and Markov there (Fig. 13's story).
        assert series["MT_MSHR_BAND"][-1] < series["Naive_Interval"][-1]
        assert series["MT_MSHR_BAND"][-1] < series["Markov_Chain"][-1]
        # Naive gets worse as warps increase on contended kernels.
        assert series["Naive_Interval"][-1] > series["Naive_Interval"][0]


class TestFigure14:
    def test_mshr_sweep(self, runner):
        result = ex.run_figure14(
            runner, kernels=["strided_deg32"], mshr_counts=(32, 64, 256)
        )
        series = result.data["series"]
        # With very many MSHRs the MSHR model stops mattering: MT and
        # MT_MSHR converge.
        assert series["MT"][-1] == pytest.approx(
            series["MT_MSHR"][-1], abs=0.05
        )
        # With few MSHRs, modeling them is essential.
        assert series["MT_MSHR"][0] < series["MT"][0]


class TestFigure15:
    def test_bandwidth_sweep(self, runner):
        result = ex.run_figure15(
            runner, kernels=["sad_calc_8"], bandwidths=(48.0, 192.0, 768.0)
        )
        series = result.data["series"]
        # Bandwidth modeling matters most at low bandwidth (Fig. 15).
        gain_low = series["MT_MSHR"][0] - series["MT_MSHR_BAND"][0]
        gain_high = series["MT_MSHR"][-1] - series["MT_MSHR_BAND"][-1]
        assert gain_low > gain_high
        assert series["MT_MSHR_BAND"][0] < series["MT_MSHR"][0]


class TestFigure16:
    def test_cpi_stacks_across_warps(self, runner):
        result = ex.run_figure16(
            runner, kernels=("cfd_step_factor", "kmeans_invert_mapping"),
            warp_counts=(2, 8),
        )
        data = result.data
        for kernel, per_warp in data.items():
            for warps, entry in per_warp.items():
                stack_total = sum(entry["stack"].values())
                assert stack_total == pytest.approx(entry["model_cpi"])
        # Normalisation: the 2-warp oracle point is 1.0 by construction.
        first = data["cfd_step_factor"][2]
        assert first["oracle_cpi"] == pytest.approx(1.0)
        # invert_mapping's bottleneck is the DRAM queue, not MSHRs.
        inv = data["kmeans_invert_mapping"][8]["stack"]
        assert inv["QUEUE"] > inv["MSHR"]


class TestRunAll:
    def test_run_all_returns_everything(self, runner):
        # Smoke test on the cheapest possible slice: monkeypatch the heavy
        # drivers' kernel lists via direct calls instead.
        results = [
            ex.run_figure4(runner, kernel="strided_deg32"),
            ex.run_figure7(runner, kernels=["mandelbrot"]),
            ex.run_figure11(runner, ["vectoradd"]),
        ]
        assert [r.experiment for r in results] == [
            "figure4", "figure7", "figure11",
        ]
        assert all(str(r) == r.text for r in results)
