"""Unit tests for the MSHR file and the DRAM bandwidth queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.dram import DRAMQueue
from repro.memory.mshr import MSHRError, MSHRFile


class TestMSHR:
    def test_allocate_and_release(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x100, completion=50.0)
        assert len(mshr) == 1
        assert mshr.lookup(0x100) == 50.0
        assert mshr.release_completed(49.0) == 0
        assert mshr.release_completed(50.0) == 1
        assert len(mshr) == 0

    def test_merge_returns_original_completion(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x100, completion=50.0)
        merged = mshr.allocate(0x100, completion=99.0)
        assert merged == 50.0
        assert len(mshr) == 1
        assert mshr.n_merges == 1

    def test_full_file_raises(self):
        mshr = MSHRFile(1)
        mshr.allocate(0x100, 10.0)
        with pytest.raises(MSHRError):
            mshr.allocate(0x200, 10.0)
        assert mshr.stalled_allocation_attempts == 1

    def test_entries_needed_counts_new_lines_once(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x100, 10.0)
        assert mshr.entries_needed([0x100, 0x200, 0x200, 0x300]) == 2

    def test_can_allocate(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x100, 10.0)
        assert mshr.can_allocate([0x100, 0x200])
        assert not mshr.can_allocate([0x200, 0x300])

    def test_next_completion(self):
        mshr = MSHRFile(4)
        assert mshr.next_completion() is None
        mshr.allocate(1, 30.0)
        mshr.allocate(2, 10.0)
        assert mshr.next_completion() == 10.0

    def test_kth_completion(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 30.0)
        mshr.allocate(2, 10.0)
        mshr.allocate(3, 20.0)
        assert mshr.kth_completion(1) == 10.0
        assert mshr.kth_completion(2) == 20.0
        assert mshr.kth_completion(3) == 30.0
        assert mshr.kth_completion(4) is None
        assert mshr.kth_completion(0) == 10.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    @given(st.lists(st.tuples(st.integers(0, 10), st.floats(1, 100)),
                    min_size=1, max_size=50))
    def test_occupancy_bounded(self, ops):
        mshr = MSHRFile(4)
        for line, completion in ops:
            if mshr.lookup(line) is None and not mshr.free_entries:
                mshr.release_completed(completion)
                if not mshr.free_entries:
                    continue
            mshr.allocate(line, completion)
            assert len(mshr) <= 4


class TestDRAMQueue:
    def test_idle_queue_no_wait(self):
        queue = DRAMQueue(2.0)
        assert queue.enqueue(10.0) == 12.0
        assert queue.total_queue_delay == 0.0

    def test_back_to_back_serialise(self):
        queue = DRAMQueue(2.0)
        queue.enqueue(0.0)
        assert queue.enqueue(0.0) == 4.0
        assert queue.enqueue(0.0) == 6.0
        assert queue.total_queue_delay == 2.0 + 4.0

    def test_gap_lets_queue_drain(self):
        queue = DRAMQueue(2.0)
        queue.enqueue(0.0)
        assert queue.enqueue(100.0) == 102.0

    def test_fcfs_ordering(self):
        queue = DRAMQueue(1.0)
        first = queue.enqueue(0.0)
        second = queue.enqueue(0.5)
        assert second > first

    def test_utilization(self):
        queue = DRAMQueue(2.0)
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        assert queue.utilization(8.0) == pytest.approx(0.5)
        assert queue.utilization(0.0) == 0.0

    def test_mean_queue_delay(self):
        queue = DRAMQueue(2.0)
        assert queue.mean_queue_delay == 0.0
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        assert queue.mean_queue_delay == pytest.approx(1.0)

    def test_invalid_service_time(self):
        with pytest.raises(ValueError):
            DRAMQueue(0.0)

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1,
                    max_size=100))
    def test_completions_monotone_and_spaced(self, arrivals):
        queue = DRAMQueue(1.5)
        completions = [queue.enqueue(a) for a in sorted(arrivals)]
        for earlier, later in zip(completions, completions[1:]):
            assert later >= earlier + 1.5
        for arrival, completion in zip(sorted(arrivals), completions):
            assert completion >= arrival + 1.5
