"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.config import GPUConfig
from repro.obs import (
    MetricsRegistry,
    Timeline,
    Tracer,
    diff_snapshots,
    get_tracer,
    render_key,
    set_tracer,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import HistogramMetric
from repro.obs.schema import FORMATS, load_schema, validate, validate_file
from repro.obs.tracer import NULL_SPAN, chrome_events
from repro.timing.simulator import TimingSimulator
from repro.trace.emulator import emulate
from repro.workloads.suite import get_kernel
from repro.workloads.generators import Scale


class TestTracerDisabled:
    def test_disabled_span_is_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b", category="x", args={"k": 1}) is NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work"):
            tracer.instant("marker")
        assert tracer.n_spans == 0
        assert tracer.spans() == []

    def test_global_default_is_disabled(self):
        assert get_tracer().enabled is False


class TestTracerRecording:
    def test_span_fields(self):
        tracer = Tracer()
        with tracer.span("stage", category="pipeline", args={"key": "k1"}):
            pass
        (span,) = tracer.spans()
        assert span["name"] == "stage"
        assert span["cat"] == "pipeline"
        assert span["args"] == {"key": "k1"}
        assert span["parent"] == 0
        assert span["dur"] >= 0.0
        assert span["ts"] >= 0.0

    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] == 0
        # The child is contained within the parent's interval.
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span["error"] == "ValueError"

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        ready = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                ready.wait(timeout=5)

        threads = [threading.Thread(target=work, args=("t%d" % i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == 2
        # Concurrent same-level spans must not become parent/child.
        assert all(s["parent"] == 0 for s in spans)
        assert len({s["tid"] for s in spans}) == 2

    def test_drain_and_merge(self):
        worker = Tracer()
        with worker.span("in-worker"):
            pass
        shipped = worker.drain()
        assert worker.n_spans == 0
        parent = Tracer()
        with parent.span("in-parent"):
            pass
        parent.merge(shipped)
        assert {s["name"] for s in parent.spans()} == {
            "in-worker", "in-parent"
        }

    def test_pickle_drops_spans_keeps_epoch(self):
        tracer = Tracer()
        with tracer.span("before-pickle"):
            pass
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.enabled is True
        assert clone.epoch == tracer.epoch
        assert clone.n_spans == 0  # workers must not replay parent spans
        with clone.span("after"):
            pass
        assert clone.n_spans == 1

    def test_set_tracer_installs_and_resets(self):
        tracer = Tracer()
        try:
            assert set_tracer(tracer) is tracer
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer().enabled is False


class TestTracerExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("outer", args={"kernel": "saxpy"}):
            with tracer.span("inner"):
                pass
        tracer.instant("mark")
        return tracer

    def test_jsonl_roundtrip_and_schema(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "spans.jsonl")
        tracer.export_jsonl(path)
        assert validate_file("spans", path) == []
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert len(lines) == 3
        assert lines == sorted(lines, key=lambda s: s["ts"])

    def test_chrome_trace_schema_and_shape(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "trace.json")
        tracer.export_chrome(path, metadata={"run": "test"})
        assert validate_file("trace", path) == []
        doc = json.load(open(path, encoding="utf-8"))
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"outer", "inner", "mark"}
        assert meta and meta[0]["args"]["name"] == "repro"
        assert doc["otherData"] == {"run": "test"}
        # Span ids survive into args so nesting is recoverable.
        by_name = {e["name"]: e for e in complete}
        assert (by_name["inner"]["args"]["parent_id"]
                == by_name["outer"]["args"]["span_id"])

    def test_extra_events_are_appended(self, tmp_path):
        path = str(tmp_path / "trace.json")
        counter = {"name": "occ", "cat": "timeline", "ph": "C",
                   "ts": 1.0, "pid": 1, "args": {"warps": 3}}
        write_chrome_trace(path, self._traced().spans(),
                           extra_events=[counter])
        assert validate_file("trace", path) == []
        doc = json.load(open(path, encoding="utf-8"))
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_chrome_events_mark_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError
        (event,) = chrome_events(tracer.spans())
        assert event["args"]["error"] == "RuntimeError"

    def test_write_jsonl_plain_function(self, tmp_path):
        path = str(tmp_path / "x.jsonl")
        write_jsonl(self._traced().spans(), path)
        assert validate_file("spans", path) == []


class TestMetrics:
    def test_counter_inc_and_reject_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", stage="trace")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter_value("requests", stage="trace") == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_labels_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("n", x="1", y="2")
        b = registry.counter("n", y="2", x="1")  # label order irrelevant
        assert a is b

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("temp").set(4)
        registry.gauge("temp").set(7)
        assert registry.snapshot()["gauges"][0]["value"] == 7.0

    def test_histogram_percentiles(self):
        histogram = HistogramMetric(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(106.6 / 5)
        assert histogram.percentile(50) == 2.0
        assert histogram.percentile(100) == 100.0  # overflow -> max
        assert histogram.percentile(0) in (0.0, 1.0)

    def test_labeled_values(self):
        registry = MetricsRegistry()
        registry.counter("stage_runs", stage="trace").inc(2)
        registry.counter("stage_runs", stage="oracle").inc(1)
        registry.counter("other", stage="trace").inc(9)
        values = registry.labeled_values("stage_runs", "stage")
        assert values == {"trace": 2, "oracle": 1}

    def test_snapshot_diff_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("runs", stage="trace").inc(5)
        worker.histogram("ms", buckets=(1.0, 10.0), stage="trace").observe(3.0)
        baseline = worker.snapshot()
        worker.counter("runs", stage="trace").inc(2)
        worker.counter("runs", stage="oracle").inc(1)
        worker.histogram("ms", buckets=(1.0, 10.0), stage="trace").observe(0.5)
        delta = diff_snapshots(worker.snapshot(), baseline)
        # The delta contains only post-baseline activity.
        assert {(c["labels"]["stage"], c["value"])
                for c in delta["counters"]} == {("trace", 2), ("oracle", 1)}
        parent = MetricsRegistry()
        parent.counter("runs", stage="trace").inc(10)
        parent.merge(delta)
        assert parent.counter_value("runs", stage="trace") == 12
        assert parent.counter_value("runs", stage="oracle") == 1
        histogram = parent.histogram("ms", buckets=(1.0, 10.0), stage="trace")
        assert histogram.count == 1
        assert histogram.sum == 0.5

    def test_merge_rejects_mismatched_bounds(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 8.0)).observe(1.0)
        with pytest.raises(ValueError):
            b.merge(a.snapshot())

    def test_export_validates_against_schema(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs", stage="trace").inc()
        registry.gauge("occupancy").set(0.5)
        registry.histogram("ms").observe(12.0)
        path = str(tmp_path / "metrics.json")
        registry.export(path)
        assert validate_file("metrics", path) == []

    def test_pickle(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter_value("runs") == 3
        clone.counter("runs").inc()  # lock was rebuilt
        assert clone.counter_value("runs") == 4

    def test_render_key(self):
        assert render_key("n", ()) == "n"
        assert render_key("n", (("a", "1"), ("b", "2"))) == "n{a=1,b=2}"


class TestTimeline:
    def test_deltas_from_cumulative_samples(self):
        timeline = Timeline(interval=100.0)
        timeline.record(0, 100.0, 8, insts_issued=50, issue_cycles=40,
                        mshr_stall_cycles=10, sfu_stall_cycles=0,
                        barrier_stall_cycles=0, dep_stall_cycles=50)
        timeline.record(0, 200.0, 4, insts_issued=70, issue_cycles=55,
                        mshr_stall_cycles=25, sfu_stall_cycles=0,
                        barrier_stall_cycles=0, dep_stall_cycles=120)
        assert timeline.n_samples == 2
        first, second = timeline.deltas(0)
        assert first["insts_issued"] == 50
        assert second["insts_issued"] == 20
        assert second["mshr_stall_cycles"] == 15
        assert second["occupancy"] == 4

    def test_counter_events_shape(self):
        timeline = Timeline(interval=10.0)
        timeline.record(1, 10.0, 2, insts_issued=5, issue_cycles=5,
                        mshr_stall_cycles=0, sfu_stall_cycles=0,
                        barrier_stall_cycles=0, dep_stall_cycles=5)
        events = timeline.counter_events(pid=42, base_ts=100.0,
                                         track_prefix="k1 ")
        assert len(events) == 2
        occupancy, activity = events
        assert occupancy["name"] == "k1 core1 occupancy"
        assert occupancy["ph"] == "C"
        assert occupancy["ts"] == 110.0
        assert occupancy["pid"] == 42
        assert activity["args"]["issued"] == 5

    def test_simulator_sampling(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        kernel, memory = get_kernel("vectoradd", Scale.tiny())
        trace = emulate(kernel, config, memory=memory)
        baseline = TimingSimulator(config).run(trace)
        sampled = TimingSimulator(config, timeline_interval=16.0).run(trace)
        # Sampling is observation only: identical simulation outcome.
        assert sampled.total_cycles == baseline.total_cycles
        assert sampled.total_insts == baseline.total_insts
        assert baseline.timeline is None
        timeline = sampled.timeline
        assert timeline is not None and timeline.n_samples > 0
        (core_id,) = timeline.samples
        samples = timeline.samples[core_id]
        # Cumulative counters never decrease; closing sample matches the
        # core's final totals.
        issued = [s.insts_issued for s in samples]
        assert issued == sorted(issued)
        assert issued[-1] == sampled.cores[0].insts_issued
        assert samples[-1].occupancy == 0  # core finished

    def test_simulator_rejects_bad_interval(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        with pytest.raises(ValueError):
            TimingSimulator(config, timeline_interval=0)


class TestSchemaValidator:
    def test_type_errors(self):
        schema = {"type": "object", "required": ["a"],
                  "properties": {"a": {"type": "integer", "minimum": 0}}}
        assert validate({"a": 1}, schema) == []
        assert validate({"a": "x"}, schema)
        assert validate({"a": -1}, schema)
        assert validate({}, schema)
        assert validate([], schema)

    def test_enum_and_additional_properties(self):
        schema = {"type": "object",
                  "properties": {"ph": {"enum": ["X", "C"]}},
                  "additionalProperties": False}
        assert validate({"ph": "X"}, schema) == []
        assert validate({"ph": "Q"}, schema)
        assert validate({"other": 1}, schema)

    def test_items(self):
        schema = {"type": "array", "items": {"type": "number"}}
        assert validate([1, 2.5], schema) == []
        assert validate([1, "x"], schema)
        assert validate([True], schema)  # bools are not numbers

    def test_all_checked_in_schemas_load(self):
        for kind in FORMATS:
            schema = load_schema(kind)
            assert isinstance(schema, dict) and schema

    def test_invalid_file_reports_errors(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{"ph": "X"}]}')
        errors = validate_file("trace", str(path))
        assert errors  # missing name/pid/ts

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.obs.schema import main as schema_main

        good = tmp_path / "good.json"
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.export_chrome(str(good))
        assert schema_main(["trace", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert schema_main(["trace", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out
