"""Unit tests for representative-warp selection (Sec. III-C)."""

import pytest

from repro.core.interval import Interval, IntervalProfile
from repro.core.representative import feature_vectors, select_representative


def profile(warp_id, n_insts, stall):
    p = IntervalProfile(warp_id=warp_id)
    p.intervals.append(Interval(n_insts=n_insts, stall_cycles=stall))
    return p


class TestFeatureVectors:
    def test_eq6_normalisation(self):
        profiles = [profile(0, 10, 10), profile(1, 10, 30)]
        features = feature_vectors(profiles)
        # perf: 0.5 and 0.25, mean 0.375; insts equal -> second column 1.
        assert features[0, 0] == pytest.approx(0.5 / 0.375)
        assert features[1, 0] == pytest.approx(0.25 / 0.375)
        assert features[:, 1] == pytest.approx([1.0, 1.0])

    def test_instruction_count_is_second_dimension(self):
        profiles = [profile(0, 10, 10), profile(1, 30, 30)]
        features = feature_vectors(profiles)
        assert features[0, 1] == pytest.approx(0.5)
        assert features[1, 1] == pytest.approx(1.5)


class TestSelection:
    def test_max_and_min(self):
        profiles = [profile(0, 10, 0), profile(1, 10, 90)]
        assert select_representative(profiles, "max").index == 0
        assert select_representative(profiles, "min").index == 1

    def test_first(self):
        profiles = [profile(0, 10, 0), profile(1, 10, 90)]
        assert select_representative(profiles, "first").index == 0

    def test_clustering_picks_majority(self):
        # Seven similar warps and one outlier: the representative must be
        # one of the majority.
        profiles = [profile(i, 10, 10) for i in range(7)]
        profiles.append(profile(7, 10, 400))
        selection = select_representative(profiles, "clustering")
        assert selection.index != 7
        assert selection.clustering is not None
        assert selection.warp_id == selection.profile.warp_id

    def test_clustering_single_warp(self):
        selection = select_representative([profile(0, 10, 10)])
        assert selection.index == 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            select_representative([profile(0, 1, 1)], "median")

    def test_empty(self):
        with pytest.raises(ValueError):
            select_representative([])

    def test_homogeneous_warps_any_choice_fine(self):
        profiles = [profile(i, 20, 5) for i in range(8)]
        selection = select_representative(profiles)
        assert 0 <= selection.index < 8
