"""Direct tests of the workload generator building blocks."""

import numpy as np

from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.trace import OpCode, emulate
from repro.workloads import Layout, Scale
from repro.workloads import generators as g

CONFIG = GPUConfig.small(n_cores=1, warps_per_core=8)
SCALE = Scale.tiny()


class TestScale:
    def test_presets(self):
        assert Scale.tiny().n_threads == 256
        assert Scale.small().n_threads == 48 * 128
        assert Scale.large().n_blocks == 384

    def test_n_elements(self):
        scale = Scale(n_blocks=2, block_size=64, iters=3)
        assert scale.n_elements == 2 * 64 * 3


class TestLayout:
    def test_disjoint_allocations(self):
        layout = Layout()
        a = layout.array(1000)
        b = layout.array(Layout.SPACING * 2)
        c = layout.array(4)
        assert a < b < c
        assert b - a >= Layout.SPACING
        assert c - b >= 2 * Layout.SPACING

    def test_zero_size_still_reserves(self):
        layout = Layout()
        assert layout.array(0) != layout.array(0)


class TestGridStride:
    def test_iterates_iters_times(self):
        scale = Scale(n_blocks=1, block_size=32, iters=3)
        b = KernelBuilder("gs")
        with g.grid_stride(b, scale) as idx:
            b.ld(b.iadd(b.imul(idx, 4), 0x100000))
        b.exit()
        kernel = b.build(scale.n_threads, scale.block_size)
        warp = emulate(kernel, CONFIG).warps[0]
        assert int(warp.is_load.sum()) == 3

    def test_index_advances_by_grid(self):
        scale = Scale(n_blocks=1, block_size=32, iters=2)
        b = KernelBuilder("gs2")
        with g.grid_stride(b, scale) as idx:
            b.st(b.iadd(b.imul(idx, 4), 0x200000), 1.0)
        b.exit()
        kernel = b.build(scale.n_threads, scale.block_size)
        warp = emulate(kernel, CONFIG).warps[0]
        stores = np.flatnonzero(warp.ops == OpCode.STORE)
        first = warp.requests(int(stores[0]))[0]
        second = warp.requests(int(stores[1]))[0]
        assert second - first == scale.n_threads * 4  # one grid stride


class TestParameterisedGenerators:
    def test_strided_divergence_parameter(self):
        for stride, degree in [(4, 1), (32, 8), (128, 32)]:
            kernel, memory = g.strided("s", SCALE, stride_bytes=stride)
            warp = emulate(kernel, CONFIG, memory=memory).warps[0]
            loads = warp.requests_per_inst[warp.is_load]
            assert int(loads.max()) == degree

    def test_compute_chain_ilp(self):
        kernel, _ = g.compute_chain("c", SCALE, chain=8, ilp=4)
        assert kernel.n_warps == SCALE.n_threads // 32

    def test_scatter_writes_store_count(self):
        kernel, memory = g.scatter_writes("w", SCALE, n_stores=3)
        warp = emulate(kernel, CONFIG, memory=memory).warps[0]
        # 3 stores per grid-stride iteration.
        assert int(warp.is_store.sum()) == 3 * SCALE.iters

    def test_gather_table_footprint(self):
        kernel, memory = g.gather("g", SCALE, table_words=256, n_gathers=2)
        trace = emulate(kernel, CONFIG, memory=memory)
        # Gather lines stay inside the 1 KB table (256 words).
        table_lines = {
            int(line)
            for warp in trace.warps
            for i in np.flatnonzero(warp.is_load)
            for line in warp.requests(int(i))
        }
        assert len(table_lines) < 300  # table + index + output arrays

    def test_matmul_smem_conflict_parameter(self):
        clean, _ = g.matmul_smem_tiled("m1", SCALE, conflict_stride_words=1)
        bad, _ = g.matmul_smem_tiled("m32", SCALE, conflict_stride_words=32)
        warp_clean = emulate(clean, CONFIG).warps[0]
        warp_bad = emulate(bad, CONFIG).warps[0]
        smem_clean = warp_clean.conflict[warp_clean.is_shared_memory]
        smem_bad = warp_bad.conflict[warp_bad.is_shared_memory]
        assert int(smem_clean.max()) == 1
        assert int(smem_bad.max()) == 32

    def test_mandelbrot_trip_counts_bounded(self):
        kernel, memory = g.mandelbrot_like("m", SCALE, max_iters=6)
        trace = emulate(kernel, CONFIG, memory=memory)
        # Longest warp bounded by max trip count x loop body + overhead.
        assert max(len(w) for w in trace.warps) < 6 * SCALE.iters * 5 + 32

    def test_invert_mapping_feature_count(self):
        kernel, memory = g.invert_mapping_like("inv", SCALE, n_features=4)
        warp = emulate(kernel, CONFIG, memory=memory).warps[0]
        # 4 stores + 4 gathers + 1 index load per iteration.
        assert int(warp.is_store.sum()) == 4 * SCALE.iters
        assert int(warp.is_load.sum()) == 5 * SCALE.iters
