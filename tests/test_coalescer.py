"""Unit and property tests for memory-access coalescing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.coalescer import coalesce, divergence_degree


class TestCoalesce:
    def test_unit_stride_coalesces_to_one_line(self):
        addrs = np.arange(32, dtype=np.int64) * 4 + 0x1000
        assert len(coalesce(addrs, 128)) == 1

    def test_line_stride_fully_diverges(self):
        addrs = np.arange(32, dtype=np.int64) * 128
        assert len(coalesce(addrs, 128)) == 32

    def test_two_lines(self):
        addrs = np.array([0, 4, 127, 128, 200], dtype=np.int64)
        lines = coalesce(addrs, 128)
        assert list(lines) == [0, 128]

    def test_returns_line_base_addresses(self):
        lines = coalesce(np.array([130, 140], dtype=np.int64), 128)
        assert list(lines) == [128]

    def test_empty_input(self):
        assert len(coalesce(np.empty(0, dtype=np.int64), 128)) == 0

    def test_duplicates_merge(self):
        addrs = np.array([64, 64, 64], dtype=np.int64)
        assert len(coalesce(addrs, 128)) == 1

    @pytest.mark.parametrize("bad", [0, 100, -128])
    def test_line_size_must_be_power_of_two(self, bad):
        with pytest.raises(ValueError):
            coalesce(np.array([0], dtype=np.int64), bad)

    @pytest.mark.parametrize(
        "stride,expected",
        [(4, 1), (8, 2), (16, 4), (32, 8), (64, 16), (128, 32), (256, 32)],
    )
    def test_divergence_degree_vs_stride(self, stride, expected):
        addrs = np.arange(32, dtype=np.int64) * stride
        assert divergence_degree(addrs, 128) == expected


class TestCoalesceProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=2 ** 40), min_size=1,
                 max_size=64),
        st.sampled_from([32, 64, 128, 256]),
    )
    def test_degree_bounded_by_lane_count(self, addrs, line_size):
        arr = np.asarray(addrs, dtype=np.int64)
        degree = divergence_degree(arr, line_size)
        assert 1 <= degree <= len(addrs)

    @given(
        st.lists(st.integers(min_value=0, max_value=2 ** 40), min_size=1,
                 max_size=64)
    )
    def test_lines_are_aligned_sorted_unique(self, addrs):
        lines = coalesce(np.asarray(addrs, dtype=np.int64), 128)
        assert all(line % 128 == 0 for line in lines)
        assert list(lines) == sorted(set(lines.tolist()))

    @given(
        st.lists(st.integers(min_value=0, max_value=2 ** 40), min_size=1,
                 max_size=64)
    )
    def test_every_address_covered(self, addrs):
        arr = np.asarray(addrs, dtype=np.int64)
        lines = set(coalesce(arr, 128).tolist())
        assert all((a // 128) * 128 in lines for a in addrs)

    @given(
        st.lists(st.integers(min_value=0, max_value=2 ** 30), min_size=1,
                 max_size=32)
    )
    def test_idempotent(self, addrs):
        arr = np.asarray(addrs, dtype=np.int64)
        once = coalesce(arr, 128)
        twice = coalesce(once, 128)
        assert list(once) == list(twice)

    @given(
        st.lists(st.integers(min_value=0, max_value=2 ** 30), min_size=1,
                 max_size=32)
    )
    def test_coarser_lines_never_increase_degree(self, addrs):
        arr = np.asarray(addrs, dtype=np.int64)
        assert divergence_degree(arr, 256) <= divergence_degree(arr, 128)
