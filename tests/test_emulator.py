"""Unit tests for the functional SIMT emulator (the input collector)."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.trace import EmulatorError, MemoryImage, OpCode, emulate
from repro.trace.trace_types import NO_DEP


def emulate_one(build_fn, n_threads=32, block_size=32, memory=None):
    b = KernelBuilder("k")
    build_fn(b)
    b.exit()
    kernel = b.build(n_threads=n_threads, block_size=block_size)
    return emulate(kernel, GPUConfig(), memory=memory)


class TestTraceShape:
    def test_one_warp_per_32_threads(self):
        trace = emulate_one(lambda b: b.mov(1.0), n_threads=128, block_size=64)
        assert trace.n_warps == 4
        assert trace.n_blocks == 2
        assert [w.block_id for w in trace.warps] == [0, 0, 1, 1]

    def test_every_instruction_recorded(self):
        trace = emulate_one(lambda b: (b.mov(1.0), b.mov(2.0)))
        warp = trace.warps[0]
        assert len(warp) == 3  # two movs + exit
        assert warp.ops[-1] == OpCode.EXIT

    def test_partial_last_warp(self):
        b = KernelBuilder("k")
        b.tid()
        b.exit()
        kernel = b.build(n_threads=48, block_size=48)
        trace = emulate(kernel, GPUConfig())
        assert trace.n_warps == 2
        assert trace.warps[1].active[0] == 16


class TestDependencies:
    def test_chain_dependencies(self):
        def build(b):
            a = b.mov(1.0)
            c = b.fmul(a, 2.0)
            b.fadd(c, 1.0)

        warp = emulate_one(build).warps[0]
        assert warp.deps[1][0] == 0
        assert warp.deps[2][0] == 1

    def test_no_dep_on_immediates_and_specials(self):
        warp = emulate_one(lambda b: b.iadd(b.tid(), 5)).warps[0]
        assert warp.deps[0][0] == NO_DEP  # mov %tid
        assert warp.deps[1][0] == 0  # iadd depends on the mov

    def test_store_depends_on_address_and_value(self):
        def build(b):
            addr = b.iadd(b.tid(), 0x1000)  # 0: tid, 1: iadd
            value = b.fadd(2.0, 3.0)  # 2
            b.st(addr, value)  # 3

        warp = emulate_one(build).warps[0]
        deps = set(warp.deps[3].tolist()) - {NO_DEP}
        assert deps == {1, 2}

    def test_last_writer_wins(self):
        def build(b):
            acc = b.mov(0.0)  # 0
            b.fadd(acc, 1.0, dst=acc)  # 1
            b.fadd(acc, 1.0, dst=acc)  # 2

        warp = emulate_one(build).warps[0]
        assert warp.deps[2][0] == 1

    def test_duplicate_producers_deduplicated(self):
        def build(b):
            a = b.mov(3.0)
            b.fmul(a, a)

        warp = emulate_one(build).warps[0]
        deps = [d for d in warp.deps[1] if d != NO_DEP]
        assert deps == [0]


class TestMemoryInstructions:
    def test_coalesced_load_one_request(self):
        def build(b):
            b.ld(b.iadd(b.imul(b.tid(), 4), 0x10000))

        warp = emulate_one(build).warps[0]
        load = np.flatnonzero(warp.ops == OpCode.LOAD)[0]
        assert warp.n_requests(load) == 1

    def test_divergent_load_32_requests(self):
        def build(b):
            b.ld(b.imul(b.tid(), 512))

        warp = emulate_one(build).warps[0]
        load = np.flatnonzero(warp.ops == OpCode.LOAD)[0]
        assert warp.n_requests(load) == 32

    def test_masked_load_requests_only_active_lanes(self):
        def build(b):
            pred = b.setp_lt(b.lane(), 4)
            with b.if_(pred):
                b.ld(b.imul(b.tid(), 512))

        warp = emulate_one(build).warps[0]
        load = np.flatnonzero(warp.ops == OpCode.LOAD)[0]
        assert warp.n_requests(load) == 4
        assert warp.active[load] == 4

    def test_loaded_values_come_from_image(self):
        image = MemoryImage()
        image.add_constant_region(0, 1 << 20, 5.0)

        def build(b):
            x = b.ld(b.imul(b.tid(), 4))
            b.st(b.imul(b.tid(), 4), b.fmul(x, 2.0), offset=1 << 21)

        trace = emulate_one(build, memory=image)
        assert trace.warps[0].n_insts > 0  # executed fine

    def test_store_then_load_roundtrip(self):
        image = MemoryImage(track_stores=True)

        def build(b):
            addr = b.imul(b.tid(), 4)
            b.st(addr, 42.0)
            loaded = b.ld(addr)
            # Store the reloaded value somewhere else; if RAW through
            # memory works this equals 42.
            b.st(addr, loaded, offset=1 << 21)

        emulate_one(build, memory=image)
        values = image.read(np.array([(1 << 21)], dtype=np.int64))
        assert values[0] == 42.0


class TestControlFlow:
    def test_if_masks_body(self):
        def build(b):
            pred = b.setp_lt(b.lane(), 8)
            with b.if_(pred):
                b.fadd(1.0, 2.0)

        warp = emulate_one(build).warps[0]
        body = np.flatnonzero(warp.ops == OpCode.FALU)[0]
        assert warp.active[body] == 8

    def test_divergent_loop_trip_counts(self):
        def build(b):
            lane = b.lane()
            count = b.mov(0)
            head = b.loop_begin()
            b.iadd(count, 1, dst=count)
            pred = b.setp_lt(count, lane)
            b.loop_end(head, pred)

        warp = emulate_one(build).warps[0]
        # Loop body executes max(1, lane) times for the longest lane (31),
        # and the active count shrinks by one each iteration after lane k
        # retires.
        body_actives = warp.active[warp.ops == OpCode.IALU]
        assert body_actives[0] == 32
        assert body_actives[-1] == 1

    def test_uniform_branch_no_divergence(self):
        def build(b):
            pred = b.setp_lt(b.lane(), 100)  # all true
            with b.if_(pred):
                b.fadd(1.0, 2.0)

        warp = emulate_one(build).warps[0]
        assert (warp.active == 32).all()

    def test_reconvergence_restores_mask(self):
        def build(b):
            pred = b.setp_lt(b.lane(), 3)
            with b.if_(pred):
                b.fadd(1.0, 2.0)
            b.fmul(2.0, 2.0)  # after reconvergence

        warp = emulate_one(build).warps[0]
        falu = np.flatnonzero(warp.ops == OpCode.FALU)
        assert warp.active[falu[0]] == 3
        assert warp.active[falu[1]] == 32

    def test_runaway_loop_detected(self):
        def build(b):
            pred = b.setp_lt(b.mov(0), 1)  # always true
            head = b.loop_begin()
            b.iadd(1, 1)
            b.loop_end(head, pred)

        b = KernelBuilder("runaway")
        build(b)
        b.exit()
        kernel = b.build(32, 32)
        with pytest.raises(EmulatorError):
            emulate(kernel, GPUConfig(), max_warp_insts=1000)


class TestArithmetic:
    def test_division_by_zero_safe(self):
        def build(b):
            b.idiv(b.tid(), 0)
            b.imod(b.tid(), 0)
            b.frcp(b.mov(0.0))
            b.flog(b.mov(0.0))
            b.frsqrt(b.mov(0.0))
            b.fexp(b.mov(1e9))

        trace = emulate_one(build)
        assert trace.warps[0].n_insts > 0  # no crash, all values finite
