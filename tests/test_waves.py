"""Tests for residency-wave construction in the cache simulator and
block-granular residency in the oracle."""


from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.memory.cache_simulator import _resident_waves, simulate_caches
from repro.trace import emulate


def kernel_with_blocks(n_blocks, block_size=64):
    b = KernelBuilder("blocks")
    b.ld(b.iadd(b.imul(b.tid(), 4), 0x100000))
    b.exit()
    return b.build(n_threads=n_blocks * block_size, block_size=block_size)


class TestResidentWaves:
    def waves_for(self, n_blocks, n_cores, warps_per_core):
        config = GPUConfig.small(n_cores=n_cores,
                                 warps_per_core=warps_per_core)
        trace = emulate(kernel_with_blocks(n_blocks), config)
        return _resident_waves(trace, config, warps_per_core), trace

    def test_single_wave_when_everything_fits(self):
        waves, trace = self.waves_for(n_blocks=4, n_cores=2, warps_per_core=8)
        # 2 blocks x 2 warps per core: fits in 8 slots -> one wave each.
        assert [len(core_waves) for core_waves in waves] == [1, 1]

    def test_waves_split_at_capacity(self):
        waves, trace = self.waves_for(n_blocks=8, n_cores=2, warps_per_core=4)
        # 4 blocks (8 warps) per core, 4 slots -> 2 waves of 2 blocks.
        for core_waves in waves:
            assert len(core_waves) == 2
            assert all(len(wave) == 4 for wave in core_waves)

    def test_every_warp_appears_exactly_once(self):
        waves, trace = self.waves_for(n_blocks=6, n_cores=2, warps_per_core=4)
        seen = [w for core_waves in waves for wave in core_waves for w in wave]
        assert sorted(seen) == list(range(trace.n_warps))

    def test_block_never_split_across_waves(self):
        waves, trace = self.waves_for(n_blocks=8, n_cores=2, warps_per_core=4)
        for core_waves in waves:
            for wave in core_waves:
                blocks = {trace.warps[w].block_id for w in wave}
                for other_wave in core_waves:
                    if other_wave is wave:
                        continue
                    assert blocks.isdisjoint(
                        {trace.warps[w].block_id for w in other_wave}
                    )

    def test_oversized_block_still_placed(self):
        # A block larger than the residency limit must still get a wave.
        config = GPUConfig.small(n_cores=1, warps_per_core=2)
        trace = emulate(kernel_with_blocks(1, block_size=128), config)
        waves = _resident_waves(trace, config, 2)
        assert sum(len(w) for w in waves[0]) == trace.n_warps


class TestResidencyAffectsMissRates:
    def test_fewer_resident_warps_shorter_reuse_distances(self):
        """A gather over an L1-sized table: with few resident warps the
        replay stays L1-friendly; interleaving the whole launch thrashes."""
        b = KernelBuilder("gather")
        tid = b.tid()
        # Pseudo-random gather over a 24 KB table (fits the 32 KB L1 only
        # if the interleaved working set stays small).
        index = b.imod(b.imul(tid, 2654435761 % 6001), 6144)
        for i in range(4):
            b.ld(b.iadd(b.imul(index, 4), 0x100000), offset=i * 8)
        b.exit()
        kernel = b.build(n_threads=64 * 64, block_size=64)
        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        trace = emulate(kernel, config)
        resident = simulate_caches(trace, config, warps_per_core=8)
        whole_launch = simulate_caches(trace, config, warps_per_core=10_000)
        assert resident.l1_miss_rate <= whole_launch.l1_miss_rate
