"""Unit tests for CPI-stack construction (Sec. VII, Table III)."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.core.contention import model_contention
from repro.core.cpi_stack import (
    CPIStack,
    StallType,
    build_cpi_stack,
    single_warp_stack,
)
from repro.core.interval import Interval, IntervalProfile
from repro.core.latency import LatencyTable
from repro.core.multithreading import model_multithreading
from repro.memory.cache_simulator import PCStats
from repro.memory.hierarchy import MissEvent


def latency_table_with(pc_stats):
    return LatencyTable(np.ones(16), pc_stats, GPUConfig())


def memory_pc_stats(pc, l1=0.0, l2=0.0, dram=1.0, n=10):
    stats = PCStats(pc=pc, is_store=False)
    stats.n_insts = n
    stats.n_requests = n
    stats.inst_events = {
        MissEvent.L1_HIT: int(round(l1 * n)),
        MissEvent.L2_HIT: int(round(l2 * n)),
        MissEvent.L2_MISS: int(round(dram * n)),
    }
    stats.req_events = dict(stats.inst_events)
    return stats


class TestCPIStackType:
    def test_total_sums_components(self):
        stack = CPIStack()
        stack.components[StallType.BASE] = 1.0
        stack.components[StallType.DEP] = 2.0
        assert stack.total == 3.0

    def test_scaled(self):
        stack = CPIStack()
        stack.components[StallType.BASE] = 2.0
        scaled = stack.scaled(0.5)
        assert scaled[StallType.BASE] == 1.0
        assert stack[StallType.BASE] == 2.0  # original untouched

    def test_render_contains_all_categories(self):
        text = CPIStack().render()
        for t in StallType:
            assert t.value in text

    def test_as_dict(self):
        d = CPIStack().as_dict()
        assert set(d) == {t.value for t in StallType}


class TestSingleWarpStack:
    def test_compute_stall_goes_to_dep(self):
        profile = IntervalProfile(warp_id=0)
        profile.intervals.append(
            Interval(n_insts=2, stall_cycles=8.0, cause_pc=0,
                     cause_is_memory=False)
        )
        stack = single_warp_stack(profile, latency_table_with({}))
        assert stack[StallType.BASE] == 1.0
        assert stack[StallType.DEP] == pytest.approx(4.0)
        assert stack.total == pytest.approx(profile.single_warp_cpi)

    def test_memory_stall_split_by_distribution(self):
        stats = memory_pc_stats(3, l1=0.1, l2=0.2, dram=0.7)
        profile = IntervalProfile(warp_id=0)
        profile.intervals.append(
            Interval(n_insts=10, stall_cycles=100.0, cause_pc=3,
                     cause_is_memory=True)
        )
        stack = single_warp_stack(profile, latency_table_with({3: stats}))
        assert stack[StallType.L1] == pytest.approx(1.0)
        assert stack[StallType.L2] == pytest.approx(2.0)
        assert stack[StallType.DRAM] == pytest.approx(7.0)
        assert stack.total == pytest.approx(profile.single_warp_cpi)

    def test_memory_cause_without_stats_falls_back_to_dep(self):
        profile = IntervalProfile(warp_id=0)
        profile.intervals.append(
            Interval(n_insts=2, stall_cycles=6.0, cause_pc=9,
                     cause_is_memory=True)
        )
        stack = single_warp_stack(profile, latency_table_with({}))
        assert stack[StallType.DEP] == pytest.approx(3.0)

    def test_empty_profile(self):
        stack = single_warp_stack(
            IntervalProfile(warp_id=0), latency_table_with({})
        )
        assert stack.total == 0.0


class TestFullStack:
    def build(self, n_warps=4):
        stats = memory_pc_stats(3, dram=1.0)
        profile = IntervalProfile(warp_id=0)
        profile.intervals.append(
            Interval(
                n_insts=10, stall_cycles=420.0, cause_pc=3,
                cause_is_memory=True, n_loads=1, load_reqs=32,
                exp_mshr_reqs=32.0, exp_dram_read_reqs=32.0,
                exp_mshr_loads=1.0, exp_dram_loads=1.0,
            )
        )
        config = GPUConfig()
        table = latency_table_with({3: stats})
        mt = model_multithreading(profile, n_warps, "rr")
        rc = model_contention(profile, n_warps, config, 420.0)
        return build_cpi_stack(profile, table, mt, rc, config), mt, rc

    def test_stack_total_equals_final_cpi(self):
        stack, mt, rc = self.build(n_warps=32)
        mshr, sfu, smem, queue = rc.effective_components(mt.cpi)
        assert stack.total == pytest.approx(
            mt.cpi + mshr + sfu + smem + queue
        )

    def test_shrink_preserves_relative_importance(self):
        stack, mt, _ = self.build(n_warps=4)
        # Without MSHR/QUEUE, remaining categories sum to CPI_mt.
        partial = sum(
            stack[t] for t in (StallType.BASE, StallType.DEP, StallType.L1,
                               StallType.L2, StallType.DRAM)
        )
        assert partial == pytest.approx(mt.cpi)

    def test_contention_categories_present_under_pressure(self):
        stack, _, _ = self.build(n_warps=32)
        assert stack[StallType.MSHR] > 0.0


class TestRenderStacks:
    def test_side_by_side(self):
        from repro.core.cpi_stack import render_stacks

        a = CPIStack()
        a.components[StallType.BASE] = 1.0
        a.components[StallType.DRAM] = 2.0
        b = CPIStack()
        b.components[StallType.QUEUE] = 3.0
        text = render_stacks({"one": a, "two": b})
        lines = text.splitlines()
        assert len(lines) == 3
        assert "3.000" in lines[1] and "3.000" in lines[2]
        assert "M" in lines[1]  # DRAM glyph
        assert "Q" in lines[2]  # QUEUE glyph

    def test_normalisation(self):
        from repro.core.cpi_stack import render_stacks

        a = CPIStack()
        a.components[StallType.BASE] = 4.0
        text = render_stacks({"x": a}, normalise_to=4.0)
        assert "1.000" in text

    def test_empty_stack(self):
        from repro.core.cpi_stack import render_stacks

        assert "0.000" in render_stacks({"zero": CPIStack()})
