"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "vectoradd", "--cores", "4", "--scale", "tiny",
             "--scheduler", "gto", "--strategy", "max"]
        )
        assert args.command == "predict"
        assert args.kernel == "vectoradd"
        assert args.cores == 4
        assert args.scheduler == "gto"
        assert args.strategy == "max"

    def test_experiment_name_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_invalid_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "saxpy",
                                       "--scheduler", "fifo"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out
        assert "40 kernels" in out

    def test_predict(self, capsys):
        assert main(["predict", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "BASE" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out and "CPI" in out

    def test_validate(self, capsys):
        assert main(
            ["validate", "strided_deg8", "--scale", "tiny", "--warps", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Naive_Interval" in out
        assert "oracle" in out

    def test_predict_with_machine_overrides(self, capsys):
        assert main(
            ["predict", "strided_deg8", "--scale", "tiny", "--mshrs", "64",
             "--bandwidth", "96", "--warps", "4"]
        ) == 0
        assert "CPI" in capsys.readouterr().out

    def test_jobs_and_cache_dir_flags(self, capsys, tmp_path):
        cache = str(tmp_path / "artifacts")
        argv = ["validate", "vectoradd", "--scale", "tiny",
                "--jobs", "2", "--cache-dir", cache]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # A rerun serves every stage from the on-disk store and must
        # print the identical table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert "oracle" in first


class TestLint:
    def test_single_kernel_clean(self, capsys):
        assert main(["lint", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd: clean" in out
        assert "0 error(s)" in out

    def test_suite_is_clean(self, capsys):
        assert main(["lint", "--suite", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "40 kernel(s): 0 error(s), 0 warning(s)" in out

    def test_all_is_the_suite(self, capsys):
        assert main(["lint", "all", "--scale", "tiny"]) == 0
        assert "40 kernel(s)" in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json

        assert main(
            ["lint", "vectoradd", "--scale", "tiny", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_errors"] == 0
        assert payload["kernels"][0]["kernel"] == "vectoradd"

    def test_broken_kernel_exits_nonzero(self, capsys, monkeypatch):
        from repro.isa import Imm, Instruction, Kernel, Reg
        from repro.workloads import suite as suite_mod

        program = (
            Instruction("iadd", dst=Reg(1), srcs=(Reg(0), Imm(1))),
            Instruction("st", srcs=(Imm(0), Reg(1))),
            Instruction("exit"),
        )
        kernel = Kernel("broken", program, n_threads=32, block_size=32)
        spec = suite_mod.KernelSpec(
            name="broken", suite="test", tags=frozenset(),
            description="uninitialized read",
            _factory=lambda scale: (kernel, None),
        )
        monkeypatch.setitem(suite_mod.SUITE, "broken", spec)
        assert main(["lint", "broken", "--scale", "tiny"]) == 1
        out = capsys.readouterr().out
        assert "uninit-read" in out and "error" in out

    def test_cost_flag_renders_cost_model(self, capsys):
        assert main(["lint", "vectoradd", "--scale", "tiny", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "cost model: vectoradd" in out
        assert "loop @" in out

    def test_cost_flag_json(self, capsys):
        import json

        assert main(
            ["lint", "strided_deg8", "--scale", "tiny", "--cost",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        cost = payload["kernels"][0]["cost"]
        assert cost["kernel"] == "strided_deg8"
        assert cost["loops"][0]["exact"]
        assert any(
            a["class"] == "strided-8" for a in cost["accesses"]
        )


class TestAnalyze:
    def test_single_kernel(self, capsys):
        assert main(["analyze", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "cost model: vectoradd" in out
        assert "xcheck vectoradd: clean" in out
        assert "0 xcheck error(s)" in out

    def test_static_only_skips_xcheck(self, capsys):
        assert main(
            ["analyze", "vectoradd", "--scale", "tiny", "--static-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "cost model: vectoradd" in out
        assert "xcheck" not in out

    def test_suite_json(self, capsys):
        import json

        assert main(
            ["analyze", "--suite", "--scale", "tiny", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_kernels"] == 40
        assert payload["n_xcheck_errors"] == 0
        names = {entry["kernel"] for entry in payload["kernels"]}
        assert "vectoradd" in names and "mandelbrot" in names
        entry = next(
            e for e in payload["kernels"] if e["kernel"] == "vectoradd"
        )
        assert entry["cost"]["loops"][0]["exact"]
        assert entry["xcheck"]["n_errors"] == 0

    def test_unknown_kernel_rejected(self, capsys):
        assert main(["analyze", "nope", "--scale", "tiny"]) == 2

    def test_xcheck_mismatch_exits_nonzero(self, capsys, monkeypatch):
        # A deliberately mis-modelled kernel: the trace comes from an
        # iters=2 build while analyze sees an iters=3 program, so the
        # exact trip count must flag a mismatch and fail the run.
        from repro.trace.emulator import emulate
        from repro.workloads import suite as suite_mod
        from repro.workloads.generators import Scale

        spec = suite_mod.SUITE["vectoradd"]

        def drifting_build(scale):
            return spec.build(
                Scale(scale.n_blocks, scale.block_size, scale.iters + 1)
            )

        import repro.pipeline.stages as stages_mod

        real_compute_xcheck = stages_mod.compute_xcheck

        def corrupted_xcheck(kernel_name, scale, trace, cost, config):
            kernel, memory = spec.build(
                Scale(scale.n_blocks, scale.block_size, scale.iters + 1)
            )
            drifted = emulate(kernel, config, memory=memory)
            return real_compute_xcheck(
                kernel_name, scale, drifted, cost, config
            )

        monkeypatch.setattr(
            "repro.pipeline.pipeline.compute_xcheck", corrupted_xcheck
        )
        assert main(["analyze", "vectoradd", "--scale", "tiny"]) == 1
        out = capsys.readouterr().out
        assert "xcheck-trip-count" in out


class TestObservabilityFlags:
    def test_quiet_suppresses_report(self, capsys):
        assert main(["-q", "list"]) == 0
        assert capsys.readouterr().out == ""

    def test_quiet_after_subcommand(self, capsys):
        assert main(["list", "-q"]) == 0
        assert capsys.readouterr().out == ""

    def test_quiet_keeps_machine_readable_json(self, capsys):
        import json

        assert main(
            ["lint", "vectoradd", "--scale", "tiny", "--format", "json",
             "-q"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_errors"] == 0

    def test_verbose_diagnostics_go_to_stderr(self, capsys):
        assert main(
            ["-v", "validate", "vectoradd", "--scale", "tiny",
             "--jobs", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert "oracle" in captured.out  # report stays on stdout

    def test_trace_out_on_any_subcommand(self, capsys, tmp_path):
        from repro.obs.schema import validate_file

        trace = str(tmp_path / "trace.json")
        assert main(
            ["validate", "vectoradd", "--scale", "tiny",
             "--trace-out", trace]
        ) == 0
        assert validate_file("trace", trace) == []

    def test_global_tracer_reset_after_main(self):
        from repro.obs import get_tracer

        assert main(["-q", "list"]) == 0
        assert get_tracer().enabled is False


class TestProfile:
    def _profile(self, tmp_path, *extra):
        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.json")
        argv = ["profile", "--suite-kernel", "vectoradd",
                "--scale", "tiny", "--warps", "4",
                "--trace-out", trace, "--metrics-out", metrics]
        argv += list(extra)
        return argv, trace, metrics

    def test_profile_emits_valid_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro.obs.schema import validate_file

        argv, trace, metrics = self._profile(tmp_path)
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "profile (1 kernels" in out
        assert "pipeline stages" in out and "oracle" in out
        assert validate_file("trace", trace) == []
        assert validate_file("metrics", metrics) == []
        doc = json.load(open(trace, encoding="utf-8"))
        events = doc["traceEvents"]
        stage_spans = {e["name"] for e in events
                       if e["ph"] == "X" and e.get("cat") == "stage"}
        assert {"trace", "cache_sim", "oracle", "predict"} <= stage_spans
        tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert any("occupancy" in t for t in tracks)
        assert any("activity" in t for t in tracks)
        payload = json.load(open(metrics, encoding="utf-8"))
        counters = {c["name"] for c in payload["counters"]}
        assert "pipeline.stage_executions" in counters
        assert "oracle.core_mshr_stall_cycles" in counters

    def test_profile_parallel_matches_serial_counters(self, capsys,
                                                      tmp_path):
        import json

        serial_argv, _, serial_metrics = self._profile(
            tmp_path / "serial", "--suite-kernel", "strided_deg8")
        parallel_argv, _, parallel_metrics = self._profile(
            tmp_path / "parallel", "--suite-kernel", "strided_deg8",
            "--jobs", "2")
        (tmp_path / "serial").mkdir()
        (tmp_path / "parallel").mkdir()
        assert main(serial_argv) == 0
        assert main(parallel_argv) == 0
        capsys.readouterr()

        def stage_runs(path):
            payload = json.load(open(path, encoding="utf-8"))
            return {
                tuple(sorted(c["labels"].items())): c["value"]
                for c in payload["counters"]
                if c["name"] == "pipeline.stage_executions"
            }

        assert stage_runs(parallel_metrics) == stage_runs(serial_metrics)

    def test_profile_rejects_unknown_kernel(self, capsys, tmp_path):
        argv, _, _ = self._profile(tmp_path, "--suite-kernel", "nope")
        assert main(argv) == 2

    def test_profile_defaults_trace_out(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "--suite-kernel", "vectoradd",
                     "--scale", "tiny", "--warps", "4", "-q"]) == 0
        assert (tmp_path / "repro-trace.json").exists()
