"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "vectoradd", "--cores", "4", "--scale", "tiny",
             "--scheduler", "gto", "--strategy", "max"]
        )
        assert args.command == "predict"
        assert args.kernel == "vectoradd"
        assert args.cores == 4
        assert args.scheduler == "gto"
        assert args.strategy == "max"

    def test_experiment_name_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_invalid_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "saxpy",
                                       "--scheduler", "fifo"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out
        assert "40 kernels" in out

    def test_predict(self, capsys):
        assert main(["predict", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "BASE" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out and "CPI" in out

    def test_validate(self, capsys):
        assert main(
            ["validate", "strided_deg8", "--scale", "tiny", "--warps", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Naive_Interval" in out
        assert "oracle" in out

    def test_predict_with_machine_overrides(self, capsys):
        assert main(
            ["predict", "strided_deg8", "--scale", "tiny", "--mshrs", "64",
             "--bandwidth", "96", "--warps", "4"]
        ) == 0
        assert "CPI" in capsys.readouterr().out

    def test_jobs_and_cache_dir_flags(self, capsys, tmp_path):
        cache = str(tmp_path / "artifacts")
        argv = ["validate", "vectoradd", "--scale", "tiny",
                "--jobs", "2", "--cache-dir", cache]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # A rerun serves every stage from the on-disk store and must
        # print the identical table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert "oracle" in first


class TestLint:
    def test_single_kernel_clean(self, capsys):
        assert main(["lint", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd: clean" in out
        assert "0 error(s)" in out

    def test_suite_is_clean(self, capsys):
        assert main(["lint", "--suite", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "40 kernel(s): 0 error(s), 0 warning(s)" in out

    def test_all_is_the_suite(self, capsys):
        assert main(["lint", "all", "--scale", "tiny"]) == 0
        assert "40 kernel(s)" in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json

        assert main(
            ["lint", "vectoradd", "--scale", "tiny", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_errors"] == 0
        assert payload["kernels"][0]["kernel"] == "vectoradd"

    def test_broken_kernel_exits_nonzero(self, capsys, monkeypatch):
        from repro.isa import Imm, Instruction, Kernel, Reg
        from repro.workloads import suite as suite_mod

        program = (
            Instruction("iadd", dst=Reg(1), srcs=(Reg(0), Imm(1))),
            Instruction("st", srcs=(Imm(0), Reg(1))),
            Instruction("exit"),
        )
        kernel = Kernel("broken", program, n_threads=32, block_size=32)
        spec = suite_mod.KernelSpec(
            name="broken", suite="test", tags=frozenset(),
            description="uninitialized read",
            _factory=lambda scale: (kernel, None),
        )
        monkeypatch.setitem(suite_mod.SUITE, "broken", spec)
        assert main(["lint", "broken", "--scale", "tiny"]) == 1
        out = capsys.readouterr().out
        assert "uninit-read" in out and "error" in out
