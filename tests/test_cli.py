"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "vectoradd", "--cores", "4", "--scale", "tiny",
             "--scheduler", "gto", "--strategy", "max"]
        )
        assert args.command == "predict"
        assert args.kernel == "vectoradd"
        assert args.cores == 4
        assert args.scheduler == "gto"
        assert args.strategy == "max"

    def test_experiment_name_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_invalid_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "saxpy",
                                       "--scheduler", "fifo"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out
        assert "40 kernels" in out

    def test_predict(self, capsys):
        assert main(["predict", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "BASE" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out and "CPI" in out

    def test_validate(self, capsys):
        assert main(
            ["validate", "strided_deg8", "--scale", "tiny", "--warps", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Naive_Interval" in out
        assert "oracle" in out

    def test_predict_with_machine_overrides(self, capsys):
        assert main(
            ["predict", "strided_deg8", "--scale", "tiny", "--mshrs", "64",
             "--bandwidth", "96", "--warps", "4"]
        ) == 0
        assert "CPI" in capsys.readouterr().out

    def test_jobs_and_cache_dir_flags(self, capsys, tmp_path):
        cache = str(tmp_path / "artifacts")
        argv = ["validate", "vectoradd", "--scale", "tiny",
                "--jobs", "2", "--cache-dir", cache]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # A rerun serves every stage from the on-disk store and must
        # print the identical table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert "oracle" in first
