"""Tests for the static kernel verifier: CFG, dataflow, and the checks."""

import json

import pytest

from repro.config import GPUConfig
from repro.isa import CmpOp, Imm, Instruction, Kernel, KernelBuilder, Reg, Special
from repro.isa.kernel import KernelValidationError
from repro.staticcheck import (
    CHECKS,
    ControlFlowGraph,
    Severity,
    lint_kernel,
    lint_program,
    reconvergence_errors,
    reports_to_json,
)
from repro.staticcheck.dataflow import (
    LANE,
    TID,
    UNINIT,
    DivergenceSources,
    LiveRegisters,
    ReachingDefinitions,
    register_tags,
    solve,
)
from repro.trace.emulator import emulate
from repro.workloads.generators import Scale
from repro.workloads.suite import SUITE, kernel_names


def setp_lane_lt(dst, bound):
    """``setp dst, lane < bound`` — the canonical divergent predicate."""
    return Instruction(
        "setp", dst=dst, srcs=(Special.LANE, Imm(bound)), cmp_op=CmpOp.LT
    )


#: A diamond: pc1 branches around pc2, both sides rejoin at pc3.
DIAMOND = (
    setp_lane_lt(Reg(0), 8),
    Instruction("bra", target=3, reconv=3, pred=Reg(0)),
    Instruction("mov", dst=Reg(1), srcs=(Imm(1),)),
    Instruction("st", srcs=(Imm(0), Reg(0))),
    Instruction("exit"),
)


class TestCFG:
    def test_successors_shapes(self):
        cfg = ControlFlowGraph(DIAMOND)
        assert cfg.succs[0] == (1,)
        assert cfg.succs[1] == (2, 3)  # fall-through first, then target
        assert cfg.succs[2] == (3,)
        assert cfg.succs[4] == ()
        assert cfg.preds[3] == (1, 2)

    def test_basic_blocks(self):
        cfg = ControlFlowGraph(DIAMOND)
        # [0,1] branch block, [2] guarded block, [3,4] join block.
        assert [(b.start, b.end) for b in cfg.blocks] == [(0, 2), (2, 3), (3, 5)]
        assert cfg.block_of[1] == 0 and cfg.block_of[4] == 2
        assert cfg.block_successors(cfg.blocks[0]) == (1, 2)

    def test_dominators(self):
        idom = ControlFlowGraph(DIAMOND).immediate_dominators()
        assert idom[0] is None  # entry
        assert idom[2] == 1
        # The join is dominated by the branch, not by either side.
        assert idom[3] == 1

    def test_postdominators(self):
        cfg = ControlFlowGraph(DIAMOND)
        ipdom = cfg.immediate_postdominators()
        # The branch's immediate post-dominator is the join.
        assert ipdom[1] == 3
        assert ipdom[4] is None  # exit is post-dominated only virtually
        assert cfg.postdominates(3, 1)
        assert not cfg.postdominates(2, 1)

    def test_unreachable_ranges(self):
        program = (
            Instruction("bra", target=3),
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("mov", dst=Reg(1), srcs=(Imm(2),)),
            Instruction("exit"),
        )
        cfg = ControlFlowGraph(program)
        assert cfg.reachable == frozenset({0, 3})
        assert cfg.unreachable_ranges() == [(1, 2)]

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ControlFlowGraph(())

    def test_reconvergence_errors_clean_on_diamond(self):
        assert reconvergence_errors(DIAMOND) == []


class TestDataflow:
    def test_reaching_definitions(self):
        program = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("iadd", dst=Reg(1), srcs=(Reg(0), Reg(2))),
            Instruction("exit"),
        )
        in_facts, _ = solve(ControlFlowGraph(program), ReachingDefinitions())
        # At pc 1: r0's write at 0 killed the synthetic entry def, r2
        # has only the synthetic def.
        assert (0, 0) in in_facts[1] and (0, UNINIT) not in in_facts[1]
        assert (2, UNINIT) in in_facts[1]

    def test_liveness_backward(self):
        program = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("mov", dst=Reg(1), srcs=(Imm(2),)),
            Instruction("st", srcs=(Imm(0), Reg(0))),
            Instruction("exit"),
        )
        _, live_out = solve(ControlFlowGraph(program), LiveRegisters())
        assert 0 in live_out[0]  # r0 read by the store
        assert 1 not in live_out[1]  # r1 never read

    def test_divergence_taint(self):
        program = (
            Instruction("mov", dst=Reg(0), srcs=(Special.TID,)),
            Instruction("mov", dst=Reg(1), srcs=(Special.CTAID,)),
            Instruction("iadd", dst=Reg(2), srcs=(Reg(0), Reg(1))),
            Instruction("ld", dst=Reg(3), srcs=(Reg(2),)),
            Instruction("exit"),
        )
        _, out = solve(ControlFlowGraph(program), DivergenceSources())
        assert register_tags(out[0], Reg(0)) == frozenset({TID})
        assert register_tags(out[1], Reg(1)) == frozenset()  # ctaid uniform
        assert register_tags(out[2], Reg(2)) == frozenset({TID})
        # A load inherits its address taint.
        assert register_tags(out[3], Reg(3)) == frozenset({TID})

    def test_taint_survives_a_join(self):
        in_facts, _ = solve(ControlFlowGraph(DIAMOND), DivergenceSources())
        assert LANE in register_tags(in_facts[3], Reg(0))


def diagnostics_of(report, check_id):
    return [(d.pc, d.severity) for d in report.by_check(check_id)]


class TestChecks:
    """One deliberately broken kernel per check, exact check id and pc."""

    def test_uninit_read_error(self):
        program = (
            Instruction("iadd", dst=Reg(1), srcs=(Reg(0), Imm(1))),
            Instruction("st", srcs=(Imm(0), Reg(1))),
            Instruction("exit"),
        )
        report = lint_program(program)
        assert diagnostics_of(report, "uninit-read") == [(0, Severity.ERROR)]
        assert report.has_errors

    def test_uninit_read_warning_on_partial_path(self):
        # r1 is written only on the taken side of the diamond, then read
        # at the join: initialized on some paths only.
        program = (
            setp_lane_lt(Reg(0), 8),
            Instruction("bra", target=3, reconv=3, pred=Reg(0)),
            Instruction("mov", dst=Reg(1), srcs=(Imm(1),)),
            Instruction("st", srcs=(Imm(0), Reg(1))),
            Instruction("exit"),
        )
        report = lint_program(program)
        assert diagnostics_of(report, "uninit-read") == [(3, Severity.WARNING)]
        assert not report.has_errors

    def test_dead_write(self):
        program = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("exit"),
        )
        report = lint_program(program)
        assert diagnostics_of(report, "dead-write") == [(0, Severity.WARNING)]

    def test_unreachable_code(self):
        program = (
            Instruction("bra", target=3),
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("mov", dst=Reg(1), srcs=(Imm(2),)),
            Instruction("exit"),
        )
        report = lint_program(program)
        # One diagnostic for the whole maximal range, anchored at its start.
        assert diagnostics_of(report, "unreachable-code") == [
            (1, Severity.WARNING)
        ]

    def test_bad_reconvergence(self):
        program = (
            setp_lane_lt(Reg(0), 8),
            Instruction("bra", target=3, reconv=2, pred=Reg(0)),
            Instruction("mov", dst=Reg(1), srcs=(Imm(1),)),
            Instruction("st", srcs=(Imm(0), Reg(0))),
            Instruction("exit"),
        )
        report = lint_program(program)
        [(pc, severity)] = diagnostics_of(report, "bad-reconvergence")
        assert (pc, severity) == (1, Severity.ERROR)
        [diag] = report.by_check("bad-reconvergence")
        assert "expected 3" in diag.message

    def test_barrier_divergence(self):
        b = KernelBuilder("bardiv")
        pred = b.setp_lt(b.lane(), 8)
        with b.if_(pred):
            b.bar()
        b.exit()
        kernel = b.build(64, 64)
        report = lint_kernel(kernel)
        bar_pc = next(
            pc for pc, i in enumerate(kernel.program) if i.opcode == "bar"
        )
        assert diagnostics_of(report, "barrier-divergence") == [
            (bar_pc, Severity.ERROR)
        ]

    def test_uniform_branch_may_guard_a_barrier(self):
        # A ctaid predicate cannot split a warp: no diagnostic.
        b = KernelBuilder("uniform_bar")
        pred = b.setp_lt(b.ctaid(), 1)
        with b.if_(pred):
            b.bar()
        b.exit()
        report = lint_kernel(b.build(64, 64))
        assert report.by_check("barrier-divergence") == ()

    def _race_builder(self, with_bar):
        b = KernelBuilder("race")
        slot = b.imul(b.lane(), 4)  # lane-indexed: collides across warps
        b.sts(slot, 1.5)
        if with_bar:
            b.bar()
        val = b.lds(slot)
        b.st(b.imul(b.tid(), 4), val)
        b.exit()
        return b.build(n_threads=64, block_size=64)  # 2 warps per block

    def test_smem_race(self):
        kernel = self._race_builder(with_bar=False)
        report = lint_kernel(kernel)
        lds_pc = next(
            pc for pc, i in enumerate(kernel.program) if i.opcode == "lds"
        )
        assert diagnostics_of(report, "smem-race") == [(lds_pc, Severity.ERROR)]

    def test_smem_race_fixed_by_barrier(self):
        report = lint_kernel(self._race_builder(with_bar=True))
        assert report.by_check("smem-race") == ()

    def test_smem_race_needs_multiple_warps(self):
        b = KernelBuilder("race1w")
        slot = b.imul(b.lane(), 4)
        b.sts(slot, 1.5)
        b.st(b.imul(b.tid(), 4), b.lds(slot))
        b.exit()
        # One warp per block: lanes run in lockstep, no inter-warp race.
        report = lint_kernel(b.build(n_threads=32, block_size=32))
        assert report.by_check("smem-race") == ()

    def test_tid_private_smem_is_not_a_race(self):
        b = KernelBuilder("private")
        slot = b.imul(b.tid(), 4)  # thread-private slots
        b.sts(slot, 1.5)
        b.st(slot, b.lds(slot))
        b.exit()
        report = lint_kernel(b.build(n_threads=64, block_size=64))
        assert report.by_check("smem-race") == ()

    def test_every_check_is_registered(self):
        assert set(CHECKS) == {
            "uninit-read", "dead-write", "unreachable-code",
            "bad-reconvergence", "barrier-divergence", "smem-race",
        }


class TestReports:
    def test_render_and_json(self):
        program = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("exit"),
        )
        report = lint_program(program, name="demo")
        text = report.render_text()
        assert "demo" in text and "dead-write" in text
        payload = json.loads(reports_to_json([report]))
        assert payload["n_errors"] == 0 and payload["n_warnings"] == 1
        assert payload["kernels"][0]["kernel"] == "demo"
        assert payload["kernels"][0]["diagnostics"][0]["check_id"] == (
            "dead-write"
        )

    def test_clean_report(self):
        report = lint_program(
            (Instruction("exit"),), name="empty"
        )
        assert not report.diagnostics
        assert report.render_text() == "empty: clean"


class TestSuiteClean:
    def test_whole_suite_lints_clean(self):
        for name in kernel_names():
            kernel, _ = SUITE[name].build(Scale.tiny())
            report = lint_kernel(kernel)
            assert not report.has_errors, report.render_text()
            # The shipped suite is also warning-free; keep it that way.
            assert not report.diagnostics, report.render_text()


class TestReconvergenceRegression:
    """Programs where the old positional heuristic got it wrong."""

    def test_positionally_plausible_but_wrong_reconv_rejected(self):
        # reconv (2) is after the branch pc (1) and before the target
        # (3), which the old `reconv <= pc and reconv <= target` check
        # accepted — but pc 2 is on the taken-around side, not the join.
        program = (
            setp_lane_lt(Reg(0), 8),
            Instruction("bra", target=3, reconv=2, pred=Reg(0)),
            Instruction("mov", dst=Reg(1), srcs=(Imm(1),)),
            Instruction("st", srcs=(Imm(0), Reg(0))),
            Instruction("exit"),
        )
        with pytest.raises(KernelValidationError, match="post-dominator"):
            Kernel("bad", program, n_threads=32, block_size=32)

    def test_backward_join_accepted_and_runs(self):
        # The join (pc 2) sits *before* the conditional branch (pc 4)
        # and equals its target: the old positional check rejected this
        # layout outright even though reconv == immediate post-dominator.
        program = (
            setp_lane_lt(Reg(0), 8),
            Instruction("bra", target=4),
            Instruction("mov", dst=Reg(1), srcs=(Imm(1),)),  # join
            Instruction("bra", target=6),
            Instruction("bra", target=2, reconv=2, pred=Reg(0)),
            Instruction("bra", target=2),
            Instruction("exit"),
        )
        kernel = Kernel("backjoin", program, n_threads=64, block_size=64)
        assert lint_kernel(kernel).by_check("bad-reconvergence") == ()
        trace = emulate(kernel, GPUConfig.small(n_cores=1, warps_per_core=4))
        assert trace.total_insts == 14  # 7 dynamic instructions x 2 warps


class TestDegenerateCFGs:
    """Regression tests: the worklist solver must stay total and sound on
    pathological control flow (empty inputs, self-loops, dead code,
    programs that never reach an exit)."""

    def test_solve_handles_empty_program(self):
        class EmptyCFG:
            program = ()
            reachable = frozenset()
            succs = {}
            preds = {}

        for analysis in (ReachingDefinitions(), LiveRegisters(),
                         DivergenceSources()):
            in_facts, out_facts = solve(EmptyCFG(), analysis)
            assert in_facts == {} and out_facts == {}

    def test_conditional_self_loop_converges(self):
        # A one-instruction loop body: the branch is its own latch.
        program = (
            setp_lane_lt(Reg(0), 8),
            Instruction("bra", target=1, reconv=2, pred=Reg(0)),
            Instruction("exit"),
        )
        cfg = ControlFlowGraph(program)
        in_facts, _ = solve(cfg, ReachingDefinitions())
        assert (0, 0) in in_facts[1]
        live_in, _ = solve(cfg, LiveRegisters())
        assert 0 in live_in[1]

    def test_unconditional_self_loop_no_reachable_exit(self):
        # An infinite loop: no exit is reachable, so a backward analysis
        # has no live boundary — it must terminate with empty facts, not
        # spin.
        program = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("bra", target=1),
            Instruction("exit"),  # unreachable
        )
        cfg = ControlFlowGraph(program)
        assert 2 not in cfg.reachable
        live_in, live_out = solve(cfg, LiveRegisters())
        assert live_in[1] == frozenset()
        rdef_in, _ = solve(cfg, ReachingDefinitions())
        assert (0, 0) in rdef_in[1]

    def test_unreachable_defs_do_not_leak(self):
        # pc 3 writes Reg(7) but is dead code: its definition must not
        # reach any reachable pc through the join identity.
        program = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("bra", target=4),
            Instruction("mov", dst=Reg(7), srcs=(Imm(9),)),  # dead
            Instruction("st", srcs=(Imm(0), Reg(7))),  # dead
            Instruction("exit"),
        )
        cfg = ControlFlowGraph(program)
        rdef_in, _ = solve(cfg, ReachingDefinitions())
        for pc in cfg.reachable:
            # The UNINIT boundary def is fine; the dead store's actual
            # definition (def pc >= 0) must never reach live code.
            assert all(
                not (reg == 7 and def_pc >= 0)
                for reg, def_pc in rdef_in[pc]
            )

    def test_cost_model_total_on_infinite_loop(self):
        # The static analyzer itself (loops + affine + trips) must stay
        # total on a program that never terminates.
        from repro.staticcheck import analyze_program
        from repro.staticcheck.costmodel import Interval

        program = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),
            Instruction("bra", target=1),
            Instruction("exit"),
        )
        cost = analyze_program(program)
        assert len(cost.loops) == 1
        assert cost.loops[0].trip == Interval(1, None)
        assert cost.insts_per_warp.hi is None

    def test_cost_model_total_on_empty_program(self):
        from repro.staticcheck import analyze_program

        cost = analyze_program(())
        assert cost.n_static_insts == 0
        assert cost.skeleton == ()


class TestReportRoundTrip:
    """JSON serialisation must round-trip losslessly in both directions
    (the CI artifact is consumed by external tooling)."""

    def test_reports_round_trip_through_json(self):
        from repro.staticcheck import reports_from_json

        dirty = (
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),  # dead write
            Instruction("mov", dst=Reg(0), srcs=(Imm(2),)),
            Instruction("st", srcs=(Imm(0), Reg(0))),
            Instruction("exit"),
        )
        reports = [
            lint_program(dirty, name="dirty"),
            lint_program(DIAMOND, name="clean"),
        ]
        assert reports[0].diagnostics  # fixture must be non-trivial
        text = reports_to_json(reports)
        recovered = reports_from_json(text)
        assert recovered == reports
        # A second encode of the decoded reports is byte-identical.
        assert reports_to_json(recovered) == text

    def test_round_trip_preserves_severity_split(self):
        from repro.staticcheck import reports_from_json

        dirty = (
            Instruction("st", srcs=(Imm(0), Reg(3))),  # uninitialized read
            Instruction("exit"),
        )
        (report,) = reports_from_json(
            reports_to_json([lint_program(dirty, name="uninit")])
        )
        assert len(report.errors) == len(
            lint_program(dirty, name="uninit").errors
        )
        assert all(
            isinstance(d.severity, Severity) for d in report.diagnostics
        )
