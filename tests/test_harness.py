"""Tests for the experiment harness: runner, reporting, speedup."""

import pytest

from repro.config import GPUConfig
from repro.harness.reporting import render_series, render_table
from repro.harness.runner import MODEL_LABELS, MODELS, Runner
from repro.workloads import Scale


@pytest.fixture(scope="module")
def runner():
    return Runner(GPUConfig.small(n_cores=2, warps_per_core=8), Scale.tiny())


class TestReporting:
    def test_table_alignment(self):
        text = render_table(
            ("name", "value"), [("a", 1.0), ("longer", 2.5)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.000" in text and "2.500" in text

    def test_series_percent(self):
        text = render_series(
            "x", [1, 2], {"model": [0.1, 0.25]}, percent=True
        )
        assert "10.0%" in text and "25.0%" in text

    def test_series_raw(self):
        text = render_series("x", [1], {"m": [0.5]})
        assert "0.500" in text


class TestRunner:
    def test_trace_cached(self, runner):
        a = runner.trace("vectoradd")
        b = runner.trace("vectoradd")
        assert a is b

    def test_evaluate_produces_all_models(self, runner):
        result = runner.evaluate("vectoradd")
        assert set(result.model_cpis) == set(MODELS)
        assert result.oracle_cpi > 0
        assert all(cpi > 0 for cpi in result.model_cpis.values())

    def test_errors_are_relative(self, runner):
        result = runner.evaluate("vectoradd")
        for model in MODELS:
            expected = abs(
                result.model_cpis[model] - result.oracle_cpi
            ) / result.oracle_cpi
            assert result.error(model) == pytest.approx(expected)
        assert set(result.errors()) == set(MODELS)

    def test_policy_override(self, runner):
        result = runner.evaluate("vectoradd", policy="gto")
        assert result.policy == "gto"

    def test_warps_override_changes_prediction(self, runner):
        # A dependence-stall kernel: more resident warps hide stalls.
        few = runner.evaluate("mandelbrot", warps_per_core=2)
        many = runner.evaluate("mandelbrot", warps_per_core=4)
        assert few.n_warps == 2 and many.n_warps == 4
        assert many.oracle_cpi < few.oracle_cpi
        assert many.model_cpis["mt"] < few.model_cpis["mt"]

    def test_model_ladder_is_cumulative(self, runner):
        """MT <= MT_MSHR <= MT_MSHR_BAND by construction."""
        for kernel in ("strided_deg32", "sad_calc_8", "vectoradd"):
            result = runner.evaluate(kernel)
            assert (
                result.model_cpis["mt"]
                <= result.model_cpis["mt_mshr"] + 1e-12
            )
            assert (
                result.model_cpis["mt_mshr"]
                <= result.model_cpis["mt_mshr_band"] + 1e-12
            )

    def test_labels_match_paper(self):
        assert MODEL_LABELS["mt_mshr_band"] == "MT_MSHR_BAND"
        assert MODEL_LABELS["naive"] == "Naive_Interval"


class TestSpeedupHarness:
    def test_measures_positive_times(self, runner):
        from repro.harness.speedup import measure_speedup

        results = measure_speedup(runner, ["vectoradd"])
        (result,) = results
        assert result.oracle_seconds > 0
        assert result.model_seconds > 0
        assert result.speedup > 0
        assert result.reconfigure_seconds <= result.model_seconds

    def test_run_speedup_renders(self, runner):
        from repro.harness.speedup import run_speedup

        result = run_speedup(runner, ["vectoradd", "saxpy"])
        assert "speedup" in result.text
        assert result.data["overall_speedup"] > 0
