"""Differential tests: the interval algorithm vs. a brute-force reference.

The production implementation (single pass, incremental interval
bookkeeping) is checked against an independent, obviously-correct
reference that first computes every issue cycle from Eq. 4, then derives
the interval structure from the issue-cycle gaps.  Hypothesis feeds both
with random dependency structures and latencies.
"""

from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.core.interval import build_interval_profile
from repro.core.latency import LatencyTable
from repro.trace.trace_types import MAX_DEPS, NO_DEP, OpCode, WarpTrace


def reference_issue_cycles(deps: List[List[int]], lat: List[float]):
    """Eq. 4, written as directly as possible."""
    issue = []
    for k in range(len(deps)):
        earliest = issue[k - 1] + 1.0 if k else 0.0
        ready = earliest
        for dep in deps[k]:
            if dep != NO_DEP:
                ready = max(ready, issue[dep] + lat[dep])
        issue.append(ready)
    return issue


def reference_intervals(issue: List[float]) -> List[Tuple[int, float]]:
    """(n_insts, stall) pairs derived from issue-cycle gaps."""
    intervals = []
    count = 0
    for k in range(len(issue)):
        count += 1
        nxt = issue[k + 1] if k + 1 < len(issue) else None
        if nxt is None:
            intervals.append((count, 0.0))
        elif nxt > issue[k] + 1.0:
            intervals.append((count, nxt - issue[k] - 1.0))
            count = 0
    return intervals


@st.composite
def random_dep_traces(draw):
    """A random trace: each instruction depends on up to 3 earlier ones."""
    n = draw(st.integers(2, 60))
    deps = []
    lats = []
    for k in range(n):
        row = []
        if k:
            n_deps = draw(st.integers(0, min(3, k)))
            producers = draw(
                st.lists(st.integers(0, k - 1), min_size=n_deps,
                         max_size=n_deps, unique=True)
            )
            row = producers
        deps.append(row + [NO_DEP] * (MAX_DEPS - len(row)))
        lats.append(float(draw(st.sampled_from([1, 4, 25, 40, 120, 420]))))
    return deps, lats


def build_trace_and_table(deps, lats):
    n = len(deps)
    trace = WarpTrace(
        warp_id=0,
        block_id=0,
        pcs=np.arange(n, dtype=np.int32),  # one static pc per dynamic inst
        ops=np.full(n, int(OpCode.IALU), dtype=np.int8),
        deps=np.asarray(deps, dtype=np.int32),
        active=np.full(n, 32, dtype=np.int16),
        req_offsets=np.zeros(n + 1, dtype=np.int64),
        req_lines=np.empty(0, dtype=np.int64),
    )
    table = LatencyTable(np.asarray(lats, dtype=np.float64), {}, GPUConfig())
    return trace, table


@settings(deadline=None, max_examples=200)
@given(random_dep_traces())
def test_interval_structure_matches_reference(data):
    deps, lats = data
    trace, table = build_trace_and_table(deps, lats)
    profile = build_interval_profile(trace, table)

    issue = reference_issue_cycles(deps, lats)
    expected = reference_intervals(issue)

    got = [(i.n_insts, i.stall_cycles) for i in profile.intervals]
    assert got == pytest.approx(expected)


@settings(deadline=None, max_examples=200)
@given(random_dep_traces())
def test_total_cycles_matches_reference(data):
    deps, lats = data
    trace, table = build_trace_and_table(deps, lats)
    profile = build_interval_profile(trace, table)
    issue = reference_issue_cycles(deps, lats)
    # Total cycles = last issue + 1 (one cycle to issue the last inst).
    assert profile.total_cycles == pytest.approx(issue[-1] + 1.0)


@settings(deadline=None, max_examples=100)
@given(random_dep_traces())
def test_cause_attribution_is_a_max_contributor(data):
    deps, lats = data
    trace, table = build_trace_and_table(deps, lats)
    profile = build_interval_profile(trace, table)
    issue = reference_issue_cycles(deps, lats)

    # Walk the boundaries: each closed interval's cause pc must be a
    # producer achieving the delayed issue cycle of the next instruction.
    boundary = -1
    for interval in profile.intervals[:-1]:
        boundary += interval.n_insts
        consumer = boundary + 1
        cause = interval.cause_pc  # pc == dynamic index in this trace
        assert cause != -1
        assert issue[cause] + lats[cause] == pytest.approx(issue[consumer])
