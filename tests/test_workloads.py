"""Tests for the 40-kernel workload suite."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.trace import emulate
from repro.workloads import SUITE, Scale, get_kernel, kernel_names, kernels_with_tag


CONFIG = GPUConfig.small(n_cores=2, warps_per_core=8)


def max_divergence(trace):
    return max(
        (int(w.requests_per_inst.max()) if len(w.req_lines) else 0)
        for w in trace.warps
    )


class TestSuiteStructure:
    def test_forty_kernels(self):
        assert len(SUITE) == 40

    def test_names_sorted_and_unique(self):
        names = kernel_names()
        assert names == sorted(set(names))

    def test_paper_case_studies_present(self):
        for name in ("cfd_step_factor", "cfd_compute_flux",
                     "kmeans_invert_mapping"):
            assert name in SUITE

    def test_tags_cover_all_axes(self):
        for tag in ("coalesced", "compute", "control_divergent", "divergent",
                    "write_heavy", "cache_friendly"):
            assert kernels_with_tag(tag), "no kernels tagged %r" % tag

    def test_suites_attributed(self):
        suites = {spec.suite for spec in SUITE.values()}
        assert {"rodinia", "parboil", "sdk", "micro"} <= suites

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("does_not_exist")

    def test_descriptions_nonempty(self):
        assert all(spec.description for spec in SUITE.values())


@pytest.mark.parametrize("name", kernel_names())
class TestEveryKernel:
    def test_builds_and_emulates(self, name):
        kernel, memory = get_kernel(name, Scale.tiny())
        trace = emulate(kernel, CONFIG, memory=memory)
        assert trace.n_warps == kernel.n_warps
        assert trace.total_insts > 0
        # Every warp terminates with an exit.
        from repro.trace import OpCode

        for warp in trace.warps:
            assert warp.ops[-1] == OpCode.EXIT

    def test_deterministic(self, name):
        kernel_a, memory_a = get_kernel(name, Scale.tiny())
        kernel_b, memory_b = get_kernel(name, Scale.tiny())
        trace_a = emulate(kernel_a, CONFIG, memory=memory_a)
        trace_b = emulate(kernel_b, CONFIG, memory=memory_b)
        assert trace_a.total_insts == trace_b.total_insts
        for wa, wb in zip(trace_a.warps, trace_b.warps):
            assert np.array_equal(wa.pcs, wb.pcs)
            assert np.array_equal(wa.req_lines, wb.req_lines)


class TestBehaviouralContracts:
    def test_coalesced_kernels_have_degree_one_loads(self):
        for name in ("vectoradd", "saxpy", "cfd_step_factor"):
            kernel, memory = get_kernel(name, Scale.tiny())
            trace = emulate(kernel, CONFIG, memory=memory)
            assert max_divergence(trace) == 1, name

    @pytest.mark.parametrize(
        "name,expected",
        [("strided_deg4", 4), ("strided_deg8", 8), ("strided_deg16", 16),
         ("strided_deg32", 32)],
    )
    def test_strided_divergence_degrees(self, name, expected):
        kernel, memory = get_kernel(name, Scale.tiny())
        trace = emulate(kernel, CONFIG, memory=memory)
        assert max_divergence(trace) == expected

    def test_invert_mapping_divergent_stores(self):
        kernel, memory = get_kernel("kmeans_invert_mapping", Scale.tiny())
        trace = emulate(kernel, CONFIG, memory=memory)
        from repro.trace import OpCode

        store_reqs = []
        for warp in trace.warps:
            for i in np.flatnonzero(warp.ops == OpCode.STORE):
                store_reqs.append(warp.n_requests(int(i)))
        assert max(store_reqs) == 32

    def test_control_divergent_kernels_have_masked_insts(self):
        for name in kernels_with_tag("control_divergent"):
            kernel, memory = get_kernel(name, Scale.tiny())
            trace = emulate(kernel, CONFIG, memory=memory)
            has_partial = any(
                (np.asarray(w.active) < w.active.max()).any()
                for w in trace.warps
            )
            assert has_partial, name

    def test_control_divergent_warps_differ_in_length(self):
        """The Fig. 7 premise: divergent kernels have heterogeneous warps."""
        kernel, memory = get_kernel("mandelbrot", Scale.tiny())
        trace = emulate(kernel, CONFIG, memory=memory)
        lengths = {len(w) for w in trace.warps}
        assert len(lengths) > 1

    def test_scale_controls_size(self):
        small_k, mem_s = get_kernel("vectoradd", Scale.tiny())
        big_k, mem_b = get_kernel("vectoradd", Scale.small())
        small = emulate(small_k, CONFIG, memory=mem_s)
        big = emulate(big_k, CONFIG, memory=mem_b)
        assert big.total_insts > small.total_insts
