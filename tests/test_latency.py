"""Unit tests for per-PC latency assignment (Sec. V-B)."""

import pytest

from repro.config import GPUConfig
from repro.core.latency import build_latency_table
from repro.isa import KernelBuilder
from repro.memory import simulate_caches
from repro.trace import emulate


def build_table(build_fn, n_threads=64, block_size=64):
    config = GPUConfig.small(n_cores=1, warps_per_core=4)
    b = KernelBuilder("k")
    build_fn(b)
    b.exit()
    kernel = b.build(n_threads=n_threads, block_size=block_size)
    trace = emulate(kernel, config)
    cache_result = simulate_caches(trace, config)
    return build_latency_table(trace, cache_result, config), config, kernel


class TestComputeLatencies:
    def test_classes_from_config(self):
        def build(b):
            b.iadd(1, 2)      # pc 0: ialu
            b.fmul(1.0, 2.0)  # pc 1: falu
            b.fsqrt(2.0)      # pc 2: sfu

        table, config, _ = build_table(build)
        assert table.latency(0) == config.op_latencies["ialu"]
        assert table.latency(1) == config.op_latencies["falu"]
        assert table.latency(2) == config.op_latencies["sfu"]

    def test_branch_and_exit_one_cycle(self):
        def build(b):
            head = b.loop_begin()
            counter = b.iadd(0, 1)
            pred = b.setp_lt(counter, 0)  # never loops again
            b.loop_end(head, pred)

        table, _, kernel = build_table(build)
        bra_pc = next(
            i for i, inst in enumerate(kernel.program) if inst.opcode == "bra"
        )
        exit_pc = len(kernel.program) - 1
        assert table.latency(bra_pc) == 1.0
        assert table.latency(exit_pc) == 1.0


class TestMemoryLatencies:
    def test_streaming_load_gets_l2_miss_amat(self):
        def build(b):
            b.ld(b.iadd(b.imul(b.tid(), 4), 0x100000))

        table, config, kernel = build_table(build)
        load_pc = next(
            i for i, inst in enumerate(kernel.program) if inst.opcode == "ld"
        )
        assert table.latency(load_pc) == config.l2_miss_latency

    def test_reused_load_gets_l1_amat(self):
        def build(b):
            addr = b.iadd(b.imul(b.tid(), 4), 0x100000)
            b.ld(addr)
            b.ld(addr)  # immediate reuse

        table, config, kernel = build_table(build)
        load_pcs = [
            i for i, inst in enumerate(kernel.program) if inst.opcode == "ld"
        ]
        assert table.latency(load_pcs[1]) == config.l1_latency

    def test_sec5b_amat_example(self):
        """Paper example: 90% L2 hits + 10% L2 misses -> 150 cycles."""
        from repro.memory.cache_simulator import PCStats
        from repro.memory.hierarchy import MissEvent

        stats = PCStats(pc=0, is_store=False)
        stats.n_insts = 10
        stats.inst_events[MissEvent.L2_HIT] = 9
        stats.inst_events[MissEvent.L2_MISS] = 1
        assert stats.amat(GPUConfig()) == pytest.approx(
            0.9 * 120 + 0.1 * 420
        )

    def test_store_latency_is_one(self):
        def build(b):
            b.st(b.iadd(b.imul(b.tid(), 4), 0x100000), 1.0)

        table, _, kernel = build_table(build)
        store_pc = next(
            i for i, inst in enumerate(kernel.program) if inst.opcode == "st"
        )
        assert table.latency(store_pc) == 1.0

    def test_stats_for_memory_pc(self):
        def build(b):
            b.ld(b.iadd(b.imul(b.tid(), 4), 0x100000))

        table, _, kernel = build_table(build)
        load_pc = next(
            i for i, inst in enumerate(kernel.program) if inst.opcode == "ld"
        )
        assert table.stats_for(load_pc) is not None
        assert table.stats_for(0) is None  # compute pc
