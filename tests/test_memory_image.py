"""Unit tests for the deterministic synthetic memory image."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.memory_image import MemoryImage


class TestDefaultHash:
    def test_deterministic(self):
        image = MemoryImage()
        addrs = np.array([0, 4, 1024, 2 ** 30], dtype=np.int64)
        assert np.array_equal(image.read(addrs), image.read(addrs))

    def test_values_in_unit_interval(self):
        image = MemoryImage()
        addrs = np.arange(0, 4096, 4, dtype=np.int64)
        values = image.read(addrs)
        assert (values >= 0).all() and (values < 1).all()

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40), min_size=1,
                    max_size=32))
    def test_two_instances_agree(self, addrs):
        a = MemoryImage().read(np.asarray(addrs, dtype=np.int64))
        b = MemoryImage().read(np.asarray(addrs, dtype=np.int64))
        assert np.array_equal(a, b)


class TestRegions:
    def test_constant_region(self):
        image = MemoryImage()
        image.add_constant_region(0x1000, 0x100, 7.5)
        values = image.read(np.array([0x1000, 0x10ff, 0x1100], dtype=np.int64))
        assert values[0] == 7.5 and values[1] == 7.5
        assert values[2] != 7.5 or True  # outside: hash value

    def test_linear_region(self):
        image = MemoryImage()
        image.add_linear_region(0x2000, 0x100, scale=2.0, offset=1.0)
        values = image.read(np.array([0x2000, 0x2004], dtype=np.int64))
        assert values[0] == 1.0
        assert values[1] == 9.0

    def test_uniform_int_region_bounds(self):
        image = MemoryImage()
        image.add_uniform_int_region(0, 4096, 3, 11)
        values = image.read(np.arange(0, 4096, 4, dtype=np.int64))
        assert (values >= 3).all() and (values < 11).all()
        assert values == pytest.approx(np.floor(values))

    def test_uniform_int_salt_changes_values(self):
        a, b = MemoryImage(), MemoryImage()
        a.add_uniform_int_region(0, 4096, 0, 1000, salt=1)
        b.add_uniform_int_region(0, 4096, 0, 1000, salt=2)
        addrs = np.arange(0, 4096, 4, dtype=np.int64)
        assert not np.array_equal(a.read(addrs), b.read(addrs))

    def test_later_regions_shadow_earlier(self):
        image = MemoryImage()
        image.add_constant_region(0, 256, 1.0)
        image.add_constant_region(0, 128, 2.0)
        values = image.read(np.array([0, 128], dtype=np.int64))
        assert list(values) == [2.0, 1.0]

    def test_invalid_region_size(self):
        with pytest.raises(ValueError):
            MemoryImage().add_region(0, 0, lambda a: a)

    def test_invalid_uniform_bounds(self):
        with pytest.raises(ValueError):
            MemoryImage().add_uniform_int_region(0, 16, 5, 5)


class TestStores:
    def test_write_then_read(self):
        image = MemoryImage()
        addrs = np.array([100, 200], dtype=np.int64)
        image.write(addrs, np.array([1.5, 2.5]), np.array([True, True]))
        values = image.read(addrs)
        assert list(values) == [1.5, 2.5]

    def test_masked_write(self):
        image = MemoryImage()
        addrs = np.array([100, 200], dtype=np.int64)
        before = image.read(addrs).copy()
        image.write(addrs, np.array([9.0, 9.0]), np.array([True, False]))
        after = image.read(addrs)
        assert after[0] == 9.0
        assert after[1] == before[1]

    def test_tracking_disabled(self):
        image = MemoryImage(track_stores=False)
        addrs = np.array([100], dtype=np.int64)
        before = image.read(addrs).copy()
        image.write(addrs, np.array([9.0]), np.array([True]))
        assert np.array_equal(image.read(addrs), before)
        assert image.n_overlaid == 0

    def test_overlay_shadows_regions(self):
        image = MemoryImage()
        image.add_constant_region(0, 256, 1.0)
        image.write(np.array([4], dtype=np.int64), np.array([3.0]),
                    np.array([True]))
        values = image.read(np.array([0, 4], dtype=np.int64))
        assert list(values) == [1.0, 3.0]
