"""Tests for the workload-characterization module."""

import pytest

from repro.analysis import characterize, render_characterization, suite_report
from repro.config import GPUConfig
from repro.trace import emulate
from repro.workloads import Scale, get_kernel

from tests.conftest import build_divergent_load, build_fp_chain, build_saxpy

CONFIG = GPUConfig.small()


def char_of(kernel, memory=None):
    return characterize(emulate(kernel, CONFIG, memory=memory))


class TestCharacterize:
    def test_basic_counts(self):
        char = char_of(build_saxpy(n_threads=128, block_size=64))
        assert char.n_warps == 4
        assert char.total_insts > 0
        assert char.insts_per_warp_mean == char.total_insts / 4
        assert char.insts_per_warp_cv == 0.0  # homogeneous warps

    def test_mix_sums_to_one(self):
        char = char_of(build_saxpy())
        assert sum(char.mix.values()) == pytest.approx(1.0)
        assert char.mix["LOAD"] > 0 and char.mix["STORE"] > 0

    def test_compute_kernel_has_no_memory(self):
        char = char_of(build_fp_chain())
        assert char.loads_per_inst == 0.0
        assert char.mean_divergence == 0.0
        assert char.footprint_lines == 0
        assert not char.is_memory_divergent

    def test_divergence_metrics(self):
        char = char_of(build_divergent_load(n_threads=64, block_size=64))
        assert char.max_divergence == 32
        assert char.is_memory_divergent
        assert char.divergence_histogram[32] > 0

    def test_write_fraction(self):
        char = char_of(build_divergent_load())
        # One divergent load + one divergent store per thread.
        assert char.write_request_fraction == pytest.approx(0.5)

    def test_control_divergence_detected(self):
        kernel, memory = get_kernel("mandelbrot", Scale.tiny())
        char = char_of(kernel, memory)
        assert char.is_control_divergent
        assert char.masked_inst_fraction > 0.1
        assert char.mean_active_lanes < 32

    def test_footprint_counts_distinct_lines(self):
        char = char_of(build_saxpy(n_threads=64, block_size=64))
        # 2 warps x 3 arrays, one line each: 6 distinct lines.
        assert char.footprint_lines == 6


class TestRendering:
    def test_render_mentions_key_metrics(self):
        char = char_of(build_divergent_load())
        text = render_characterization(char)
        assert "divergence" in text
        assert "memory-divergent" in text
        assert char.kernel_name in text

    def test_suite_report_subset(self):
        text = suite_report(
            scale=Scale.tiny(), kernels=["vectoradd", "strided_deg32"],
            config=CONFIG,
        )
        assert "vectoradd" in text and "strided_deg32" in text
        assert "mean div" in text
