"""Telemetry stack: OpenMetrics exposition, the live HTTP exporter,
the sampling profiler, the prediction ledger and its watchdog, and the
HTML dashboard."""

import json
import math
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import GPUConfig
from repro.harness.runner import Runner
from repro.obs import (
    MetricsExporter,
    MetricsRegistry,
    OPENMETRICS_CONTENT_TYPE,
    PredictionLedger,
    SamplingProfiler,
    Tracer,
    compare_ledgers,
    diff_snapshots,
    escape_label_value,
    read_ledger,
    render_dashboard,
    render_key,
    render_openmetrics,
    unescape_label_value,
    validate_openmetrics,
)
from repro.obs.ledger import per_kernel_errors, runs
from repro.obs.openmetrics import metric_name, parse_labels
from repro.obs.sampler import profile_call, wait_for_samples
from repro.obs.schema import load_schema, validate, validate_file
from repro.workloads import Scale


@pytest.fixture
def config():
    return GPUConfig.small(n_cores=2, warps_per_core=8)


def _fetch(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, dict(response.headers), response.read()


# ---------------------------------------------------------------------------
# Satellites: label escaping, histogram edge cases
# ---------------------------------------------------------------------------


class TestLabelEscaping:
    @pytest.mark.parametrize("value", [
        "plain", 'with"quote', "back\\slash", "line\nfeed",
        'all\\of"them\ntogether', "", "\\\\", '""',
    ])
    def test_escape_round_trips(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    def test_escape_is_openmetrics_three(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_render_key_bare_when_safe(self):
        assert render_key("n", (("a", "1"), ("b", "2"))) == "n{a=1,b=2}"

    def test_render_key_quotes_unsafe_values(self):
        key = render_key("n", (("path", 'a"b'),))
        assert key == 'n{path="a\\"b"}'

    def test_render_key_quotes_newline_and_comma(self):
        assert render_key("n", (("a", "x\ny"),)) == 'n{a="x\\ny"}'
        assert render_key("n", (("a", "x,y"),)) == 'n{a="x,y"}'

    def test_distinct_values_stay_distinct(self):
        # The raison d'etre: these collided under naive rendering.
        a = render_key("n", (("k", 'v",x="1'),))
        b = render_key("n", (("k", "v"), ("x", "1")))
        assert a != b


class TestHistogramEdgeCases:
    def test_empty_percentile_is_nan(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("h", buckets=(1, 2, 4))
        assert math.isnan(histogram.percentile(50))
        assert math.isnan(histogram.percentile(0))
        assert math.isnan(histogram.percentile(100))

    def test_sum_is_exact_not_bucket_midpoints(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("h", buckets=(1, 10, 100))
        for value in (0.25, 3.5, 42.0, 1000.0):
            histogram.observe(value)
        assert histogram.sum == 0.25 + 3.5 + 42.0 + 1000.0
        assert histogram.count == 4
        assert histogram.max == 1000.0

    def test_nonempty_percentiles_still_defined(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("h", buckets=(1, 2, 4))
        histogram.observe(1.5)
        assert histogram.percentile(50) == 2


# ---------------------------------------------------------------------------
# Satellites: diff/merge across worker round-trips
# ---------------------------------------------------------------------------


def _worker_round_trip(registry, mutate, protocol=pickle.HIGHEST_PROTOCOL):
    """Simulate one pool-worker round trip: the registry is pickled into
    the worker (as spawn does; fork shares then copies-on-write, which
    pickle over-approximates), mutated there, and the activity *delta*
    is shipped back — exactly what the pipeline's worker path does."""
    worker = pickle.loads(pickle.dumps(registry, protocol=protocol))
    baseline = worker.snapshot()
    mutate(worker)
    return diff_snapshots(worker.snapshot(), baseline)


class TestSnapshotMergeDiff:
    def _seed(self):
        registry = MetricsRegistry()
        registry.counter("stage.runs", stage="trace").inc(3)
        registry.histogram("stage.ms", buckets=(1, 10, 100),
                           stage="trace").observe(5.0)
        registry.histogram("stage.ms", buckets=(1, 10, 100),
                           stage="oracle").observe(50.0)
        return registry

    @pytest.mark.parametrize("protocol", [2, pickle.HIGHEST_PROTOCOL])
    def test_overlapping_labeled_histograms_merge_exactly(self, protocol):
        parent = self._seed()

        def work_a(worker):
            worker.histogram("stage.ms", buckets=(1, 10, 100),
                             stage="trace").observe(0.5)
            worker.counter("stage.runs", stage="trace").inc()

        def work_b(worker):
            worker.histogram("stage.ms", buckets=(1, 10, 100),
                             stage="trace").observe(200.0)
            worker.histogram("stage.ms", buckets=(1, 10, 100),
                             stage="cache_sim").observe(2.0)

        for delta in (
            _worker_round_trip(parent, work_a, protocol),
            _worker_round_trip(parent, work_b, protocol),
        ):
            parent.merge(delta)

        trace = parent.histogram("stage.ms", buckets=(1, 10, 100),
                                 stage="trace")
        assert trace.count == 3  # seed + worker A + worker B
        assert trace.sum == pytest.approx(5.0 + 0.5 + 200.0)
        assert trace.max == 200.0
        assert parent.counter_value("stage.runs", stage="trace") == 4
        new = parent.histogram("stage.ms", buckets=(1, 10, 100),
                               stage="cache_sim")
        assert new.count == 1 and new.sum == 2.0

    def test_delta_excludes_preexisting_activity(self):
        parent = self._seed()
        delta = _worker_round_trip(parent, lambda w: None)
        assert delta["counters"] == []
        assert delta["histograms"] == []

    def test_merged_registry_survives_second_round_trip(self):
        # fork-then-spawn in sequence: merge a delta, pickle the merged
        # parent again, mutate, merge again — totals stay exact.
        parent = self._seed()
        parent.merge(_worker_round_trip(
            parent,
            lambda w: w.histogram("stage.ms", buckets=(1, 10, 100),
                                  stage="trace").observe(7.0),
        ))
        parent.merge(_worker_round_trip(
            parent,
            lambda w: w.histogram("stage.ms", buckets=(1, 10, 100),
                                  stage="trace").observe(9.0),
        ))
        trace = parent.histogram("stage.ms", buckets=(1, 10, 100),
                                 stage="trace")
        assert trace.count == 3
        assert trace.sum == pytest.approx(5.0 + 7.0 + 9.0)

    def test_merge_rejects_mismatched_bounds(self):
        parent = self._seed()
        foreign = MetricsRegistry()
        foreign.histogram("stage.ms", buckets=(1, 2), stage="trace").observe(1)
        with pytest.raises(ValueError):
            parent.merge(foreign.snapshot())


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------


class TestOpenMetrics:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.stage_executions", stage="trace").inc(2)
        registry.counter("pipeline.stage_executions", stage="oracle").inc()
        registry.gauge("workers.active").set(3)
        hist = registry.histogram("stage.ms", buckets=(1, 10, 100),
                                  stage="trace")
        hist.observe(0.5)
        hist.observe(42.0)
        return registry

    def test_render_validates_clean(self):
        text = render_openmetrics(self._registry().snapshot())
        assert validate_openmetrics(text) == []

    def test_counter_renamed_to_total(self):
        text = render_openmetrics(self._registry().snapshot())
        assert "# TYPE pipeline_stage_executions counter" in text
        assert 'pipeline_stage_executions_total{stage="trace"} 2' in text

    def test_gauge_plain(self):
        text = render_openmetrics(self._registry().snapshot())
        assert "# TYPE workers_active gauge" in text
        assert "workers_active 3" in text

    def test_histogram_cumulative_with_inf_sum_count(self):
        text = render_openmetrics(self._registry().snapshot())
        assert 'stage_ms_bucket{stage="trace",le="1"} 1' in text
        assert 'stage_ms_bucket{stage="trace",le="100"} 2' in text
        assert 'stage_ms_bucket{stage="trace",le="+Inf"} 2' in text
        assert 'stage_ms_sum{stage="trace"} 42.5' in text
        assert 'stage_ms_count{stage="trace"} 2' in text

    def test_ends_with_eof(self):
        text = render_openmetrics(self._registry().snapshot())
        assert text.endswith("# EOF\n")

    def test_label_escapes_round_trip_through_parse(self):
        registry = MetricsRegistry()
        nasty = 'ker"nel\\with\nnewline'
        registry.counter("runs", kernel=nasty).inc()
        text = render_openmetrics(registry.snapshot())
        assert validate_openmetrics(text) == []
        sample = [line for line in text.splitlines()
                  if line.startswith("runs_total{")][0]
        labels = parse_labels(sample[len("runs_total{"):sample.index("} ")])
        assert labels == {"kernel": nasty}

    def test_metric_name_sanitization(self):
        assert metric_name("pipeline.stage_ms") == "pipeline_stage_ms"
        assert metric_name("9lives") == "_9lives"
        assert metric_name("a-b c") == "a_b_c"

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("stage.ms").inc()
        registry.histogram("stage_ms", buckets=(1,)).observe(0.5)
        with pytest.raises(ValueError):
            render_openmetrics(registry.snapshot())

    # -- the validator actually catches broken documents --------------------

    def test_validator_rejects_missing_eof(self):
        assert any("EOF" in e for e in validate_openmetrics(
            "# TYPE a counter\na_total 1\n"
        ))

    def test_validator_rejects_non_cumulative_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\nh_sum 1\nh_count 5\n# EOF\n')
        assert any("cumulative" in e for e in validate_openmetrics(text))

    def test_validator_rejects_inf_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\n'
                "h_sum 1\nh_count 3\n# EOF\n")
        assert any("_count" in e for e in validate_openmetrics(text))

    def test_validator_rejects_counter_without_total(self):
        text = "# TYPE c counter\nc 1\n# EOF\n"
        assert any("_total" in e for e in validate_openmetrics(text))

    def test_validator_rejects_negative_counter(self):
        text = "# TYPE c counter\nc_total -1\n# EOF\n"
        assert any("negative" in e for e in validate_openmetrics(text))

    def test_validator_rejects_garbage_line(self):
        text = "# TYPE c counter\nnot a sample line at all !\n# EOF\n"
        assert validate_openmetrics(text)

    def test_schema_cli_dispatches_openmetrics(self, tmp_path):
        good = tmp_path / "good.om"
        good.write_text(render_openmetrics(self._registry().snapshot()))
        assert validate_file("openmetrics", str(good)) == []
        bad = tmp_path / "bad.om"
        bad.write_text("# TYPE c counter\nc_total -1\n")
        assert validate_file("openmetrics", str(bad))


# ---------------------------------------------------------------------------
# HTTP exporter
# ---------------------------------------------------------------------------


class TestExporter:
    def test_metrics_endpoint_serves_valid_openmetrics(self):
        registry = MetricsRegistry()
        registry.counter("runs", kernel="vectoradd").inc(7)
        with MetricsExporter(registry) as exporter:
            status, headers, body = _fetch(exporter.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert validate_openmetrics(text) == []
        assert 'runs_total{kernel="vectoradd"} 7' in text

    def test_scrape_mid_run_sees_live_counters(self, config):
        """The acceptance check: a sweep is scrapeable *while* it runs,
        every scrape a valid exposition, counters visibly advancing."""
        runner = Runner(config, Scale.tiny())
        done = threading.Event()

        def sweep():
            try:
                for kernel in ("vectoradd", "strided_deg8"):
                    runner.evaluate(kernel, warps_per_core=4)
            finally:
                done.set()

        with MetricsExporter(runner.metrics) as exporter:
            thread = threading.Thread(target=sweep, daemon=True)
            thread.start()
            mid_run_scrapes = 0
            last = ""
            while not done.is_set():
                _, _, body = _fetch(exporter.url + "/metrics")
                last = body.decode("utf-8")
                assert validate_openmetrics(last) == []
                mid_run_scrapes += 1
            thread.join(timeout=30.0)
            _, _, body = _fetch(exporter.url + "/metrics")
            final = body.decode("utf-8")
        assert mid_run_scrapes >= 1
        assert validate_openmetrics(final) == []
        assert "pipeline_stage_executions_total" in final
        assert exporter.n_scrapes == mid_run_scrapes + 1
        assert last  # at least one mid-run exposition was non-empty

    def test_healthz(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            status, _, body = _fetch(exporter.url + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["n_spans"] == 0

    def test_spans_endpoint_streams_ndjson(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        with MetricsExporter(MetricsRegistry(), tracer=tracer) as exporter:
            status, headers, body = _fetch(exporter.url + "/spans")
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        names = [json.loads(line)["name"]
                 for line in body.decode().splitlines()]
        assert set(names) == {"outer", "inner"}

    def test_unknown_path_404(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            try:
                _fetch(exporter.url + "/nope")
                status = 200
            except urllib.error.HTTPError as exc:
                status = exc.code
                payload = json.loads(exc.read())
        assert status == 404
        assert "/metrics" in payload["endpoints"]

    def test_lifecycle_idempotent(self):
        exporter = MetricsExporter(MetricsRegistry())
        assert not exporter.running
        exporter.start()
        exporter.start()
        assert exporter.running and exporter.port > 0
        exporter.stop()
        exporter.stop()
        assert not exporter.running


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------


def _spin(deadline_event):
    while not deadline_event.is_set():
        sum(i * i for i in range(500))


class TestSampler:
    def test_samples_running_code(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
        worker.start()
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            assert wait_for_samples(profiler, 5)
        stop.set()
        worker.join()
        assert profiler.n_samples >= 5
        assert any("_spin" in frame for stack in profiler.stacks()
                   for frame in stack)

    def test_collapsed_format(self):
        profiler = SamplingProfiler(interval=0.002)
        profiler._stacks[("a:f", "b:g")] = 3
        profiler._stacks[("a:f",)] = 1
        lines = profiler.collapsed()
        assert lines == ["a:f;b:g 3", "a:f 1"]

    def test_write_collapsed(self, tmp_path):
        profiler = SamplingProfiler()
        profiler._stacks[("m:f",)] = 2
        out = tmp_path / "stacks.txt"
        profiler.write_collapsed(str(out))
        assert out.read_text() == "m:f 2\n"

    def test_span_attribution(self):
        tracer = Tracer(enabled=True)
        profiler = SamplingProfiler(interval=0.001, tracer=tracer)
        seen = threading.Event()
        stop = threading.Event()

        def staged():
            with tracer.span("trace"):
                seen.set()
                _spin(stop)

        worker = threading.Thread(target=staged, daemon=True)
        worker.start()
        seen.wait(5.0)
        for _ in range(20):
            profiler.sample_once()
        stop.set()
        worker.join()
        spans = profiler.by_span()
        assert spans.get("trace", 0) > 0
        assert any(stack[0] == "stage:trace"
                   for stack in profiler.stacks())

    def test_hot_frames_are_leaves(self):
        profiler = SamplingProfiler()
        profiler._stacks[("root:r", "leaf:a")] = 5
        profiler._stacks[("root:r", "leaf:b")] = 2
        assert profiler.hot_frames(top=1) == [("leaf:a", 5)]

    def test_by_span_without_tracer(self):
        profiler = SamplingProfiler()
        profiler._stacks[("m:f",)] = 4
        assert profiler.by_span() == {"(no span)": 4}

    def test_profile_call(self):
        result, profiler = profile_call(lambda: 42, interval=0.001)
        assert result == 42
        assert not profiler.running

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)


class TestTracerOpenSpans:
    def test_open_span_names_nesting(self):
        tracer = Tracer(enabled=True)
        assert tracer.open_span_names() == ()
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.open_span_names() == ("outer", "inner")
            assert tracer.open_span_names() == ("outer",)
        assert tracer.open_span_names() == ()

    def test_open_span_names_cross_thread(self):
        tracer = Tracer(enabled=True)
        inside = threading.Event()
        release = threading.Event()
        tid_holder = []

        def work():
            tid_holder.append(threading.get_ident())
            with tracer.span("worker-stage"):
                inside.set()
                release.wait(5.0)

        thread = threading.Thread(target=work, daemon=True)
        thread.start()
        inside.wait(5.0)
        assert tracer.open_span_names(tid_holder[0]) == ("worker-stage",)
        release.set()
        thread.join()
        assert tracer.open_span_names(tid_holder[0]) == ()

    def test_pickled_tracer_has_no_open_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            clone = pickle.loads(pickle.dumps(tracer))
        assert clone.open_span_names() == ()


# ---------------------------------------------------------------------------
# Prediction ledger
# ---------------------------------------------------------------------------


class TestLedger:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = PredictionLedger(str(path))
        ledger.append({"kernel": "k", "value": 1.0})
        ledger.append({"kernel": "k2", "value": float("nan")})
        records = read_ledger(str(path))
        assert len(records) == 2
        assert records[0]["run_id"] == ledger.run_id
        assert records[0]["ts"] > 0
        assert records[1]["value"] is None  # NaN sanitized, not 0.0

    def test_rotate_run(self, tmp_path):
        ledger = PredictionLedger(str(tmp_path / "l.jsonl"))
        first = ledger.run_id
        ledger.append({"kernel": "a"})
        second = ledger.rotate_run()
        ledger.append({"kernel": "a"})
        assert first != second
        grouped = runs(read_ledger(ledger.path))
        assert [run_id for run_id, _ in grouped] == [first, second]

    def test_ledger_is_picklable(self, tmp_path):
        ledger = PredictionLedger(str(tmp_path / "l.jsonl"))
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.path == ledger.path
        assert clone.run_id == ledger.run_id
        clone.append({"kernel": "from-worker"})
        assert read_ledger(ledger.path)[0]["kernel"] == "from-worker"

    def test_per_kernel_errors_takes_last(self):
        records = [
            {"kernel": "k", "ts": 1, "errors": {"mt_mshr_band": 0.5}},
            {"kernel": "k", "ts": 2, "errors": {"mt_mshr_band": 0.1}},
        ]
        assert per_kernel_errors(records) == {"k": 0.1}

    def test_pipeline_record_validates_against_schema(
        self, config, tmp_path
    ):
        path = tmp_path / "ledger.jsonl"
        runner = Runner(config, Scale.tiny(), ledger=PredictionLedger(
            str(path)
        ))
        runner.evaluate("vectoradd", warps_per_core=4)
        records = read_ledger(str(path))
        assert len(records) == 1
        record = records[0]
        schema = load_schema("ledger")
        assert validate(record, schema) == []
        assert record["kernel"] == "vectoradd"
        assert record["fingerprint"]
        assert record["arch"] == config.arch
        assert set(record["model_cpis"]) == {
            "naive", "markov", "mt", "mt_mshr", "mt_mshr_band"
        }
        assert "BASE" in record["cpi_stack"]
        assert 0.0 <= record["cache"]["l1_miss_rate"] <= 1.0
        assert record["stage_seconds"]  # fresh run: stages executed
        assert record["duration_s"] > 0
        assert runner.metrics.counter_value("ledger.records") == 1

    def test_parallel_workers_append_all_records(self, config, tmp_path):
        path = tmp_path / "ledger.jsonl"
        runner = Runner(config, Scale.tiny(), jobs=2,
                        ledger=PredictionLedger(str(path)))
        kernels = ("vectoradd", "strided_deg8", "transpose_naive")
        runner.evaluate_many(
            [{"kernel": k, "warps_per_core": 4} for k in kernels]
        )
        records = read_ledger(str(path))
        assert sorted(r["kernel"] for r in records) == sorted(kernels)
        assert {r["run_id"] for r in records} == {runner.pipeline.ledger.run_id}

    def test_cached_reevaluation_still_appends(self, config, tmp_path):
        # Accuracy history wants one record per *evaluation*, even when
        # every artifact comes from the store.
        path = tmp_path / "ledger.jsonl"
        runner = Runner(config, Scale.tiny(),
                        ledger=PredictionLedger(str(path)))
        runner.evaluate("vectoradd", warps_per_core=4)
        runner.evaluate("vectoradd", warps_per_core=4)
        assert len(read_ledger(str(path))) == 2


# ---------------------------------------------------------------------------
# Accuracy watchdog
# ---------------------------------------------------------------------------


def _record(kernel, error, run_id="r1", ts=1.0):
    return {
        "kernel": kernel, "run_id": run_id, "ts": ts,
        "errors": {"mt_mshr_band": error},
    }


class TestWatchdog:
    def test_self_compare_is_clean(self):
        records = [_record("a", 0.05), _record("b", 0.10)]
        report = compare_ledgers(records, records)
        assert not report.has_regressions
        assert len(report.rows) == 2

    def test_fault_injection_trips_the_gate(self):
        """The CI-gate demonstration: inflate one kernel's error beyond
        tolerance and the watchdog must fail."""
        baseline = [_record("a", 0.05), _record("b", 0.10)]
        current = [_record("a", 0.05), _record("b", 0.10 + 0.03)]
        report = compare_ledgers(baseline, current, tolerance=0.02)
        assert report.has_regressions
        assert [r.kernel for r in report.regressions] == ["b"]
        assert report.regressions[0].delta == pytest.approx(0.03)

    def test_within_tolerance_passes(self):
        baseline = [_record("a", 0.05)]
        current = [_record("a", 0.06)]
        assert not compare_ledgers(
            baseline, current, tolerance=0.02
        ).has_regressions

    def test_rel_tolerance_adds_budget(self):
        baseline = [_record("a", 0.10)]
        current = [_record("a", 0.145)]
        assert compare_ledgers(baseline, current, tolerance=0.02,
                               rel_tolerance=0.0).has_regressions
        assert not compare_ledgers(baseline, current, tolerance=0.02,
                                   rel_tolerance=0.5).has_regressions

    def test_missing_kernel_is_coverage_loss(self):
        baseline = [_record("a", 0.05), _record("b", 0.05)]
        current = [_record("a", 0.05)]
        report = compare_ledgers(baseline, current)
        assert report.has_regressions
        assert report.regressions[0].note == "missing from current"
        assert not compare_ledgers(
            baseline, current, allow_missing=True
        ).has_regressions

    def test_new_kernel_is_informational(self):
        report = compare_ledgers([_record("a", 0.05)],
                                 [_record("a", 0.05), _record("new", 0.9)])
        assert not report.has_regressions
        notes = {r.kernel: r.note for r in report.rows}
        assert "new" in notes["new"]

    def test_becoming_degenerate_regresses(self):
        baseline = [_record("a", 0.05)]
        current = [_record("a", None)]
        report = compare_ledgers(baseline, current)
        assert report.has_regressions
        assert report.regressions[0].note == "degenerate oracle"

    def test_latest_record_wins_within_a_ledger(self):
        baseline = [_record("a", 0.05)]
        current = [_record("a", 0.50, ts=1.0), _record("a", 0.05, ts=2.0)]
        assert not compare_ledgers(baseline, current).has_regressions

    def test_report_render_and_dict(self):
        report = compare_ledgers([_record("a", 0.05)],
                                 [_record("a", 0.20)])
        text = report.render_text()
        assert "REGRESSED" in text and "a" in text
        payload = report.to_dict()
        assert payload["n_regressions"] == 1
        assert payload["rows"][0]["regressed"] is True


# ---------------------------------------------------------------------------
# Dashboard
# ---------------------------------------------------------------------------


def _ledger_history():
    records = []
    for i, run_id in enumerate(("run-1", "run-2", "run-3")):
        for kernel, base in (("vectoradd", 0.02), ("strided_deg8", 0.06)):
            records.append({
                "kernel": kernel, "run_id": run_id, "ts": 10.0 * i + 1,
                "arch": "gpumech2014", "backend": "vectorized",
                "oracle_cpi": 2.0,
                "model_cpis": {"mt_mshr_band": 2.0 * (1 + base + 0.01 * i)},
                "errors": {"mt_mshr_band": base + 0.01 * i},
                "cpi_stack": {"BASE": 1.0, "DEP": 0.4, "L1": 0.2,
                              "L2": 0.1, "DRAM": 0.2, "MSHR": 0.05,
                              "QUEUE": 0.05, "SFU": 0.0, "SMEM": 0.0},
                "cache": {"l1_miss_rate": 0.3 + 0.01 * i,
                          "l2_miss_rate": 0.5},
            })
    return records


class TestDashboard:
    def test_renders_multi_run_history(self):
        html = render_dashboard(_ledger_history())
        assert "<svg" in html and "polyline" in html
        assert "Prediction error per kernel" in html
        assert "CPI-stack attribution" in html
        assert "Cache miss-rate trends" in html
        assert "vectoradd" in html and "strided_deg8" in html
        assert "3 run(s)" in html

    def test_drift_direction_marked_not_color_alone(self):
        html = render_dashboard(_ledger_history())
        assert "▲" in html  # errors rise across the synthetic runs

    def test_dark_mode_is_selected_palette(self):
        html = render_dashboard(_ledger_history())
        assert "prefers-color-scheme: dark" in html
        assert 'data-theme="dark"' in html
        assert "#3987e5" in html  # dark-mode series-1, not an auto-invert

    def test_kernel_names_are_escaped(self):
        records = _ledger_history()
        for record in records:
            record["kernel"] = "<script>alert(1)</script>"
        html = render_dashboard(records)
        assert "<script>alert" not in html

    def test_single_run_renders_without_sparklines(self):
        records = [r for r in _ledger_history() if r["run_id"] == "run-1"]
        html = render_dashboard(records)
        assert "1 run(s)" in html
        assert "n/a" in html  # a 1-point trend is not a line

    def test_bench_table(self, tmp_path):
        (tmp_path / "BENCH_obs.json").write_text(
            json.dumps({"baseline_s": 1.5, "enabled_s": 1.6, "note": "x"})
        )
        from repro.obs import collect_bench
        bench = collect_bench(str(tmp_path))
        html = render_dashboard(_ledger_history(), bench=bench)
        assert "BENCH_obs.json" in html and "baseline_s" in html

    def test_write_dashboard(self, tmp_path):
        from repro.obs import write_dashboard
        out = tmp_path / "dash.html"
        write_dashboard(str(out), _ledger_history())
        assert out.read_text().startswith("<!DOCTYPE html>")


# ---------------------------------------------------------------------------
# CLI faces
# ---------------------------------------------------------------------------


class TestTelemetryCLI:
    def _seed_ledgers(self, tmp_path, drift=0.0):
        from repro.cli import main

        baseline = tmp_path / "baseline.jsonl"
        for kernel, error in (("a", 0.05), ("b", 0.10)):
            PredictionLedger(str(baseline), run_id="base").append(
                _record(kernel, error)
            )
        current = tmp_path / "current.jsonl"
        for kernel, error in (("a", 0.05), ("b", 0.10 + drift)):
            PredictionLedger(str(current), run_id="cur").append(
                _record(kernel, error)
            )
        return main, str(baseline), str(current)

    def test_watchdog_exit_zero_when_clean(self, tmp_path, capsys):
        main, baseline, current = self._seed_ledgers(tmp_path)
        assert main(["watchdog", "--baseline", baseline,
                     "--current", current]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_watchdog_exit_nonzero_on_regression(self, tmp_path, capsys):
        main, baseline, current = self._seed_ledgers(tmp_path, drift=0.05)
        assert main(["watchdog", "--baseline", baseline,
                     "--current", current]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_watchdog_json_format(self, tmp_path, capsys):
        main, baseline, current = self._seed_ledgers(tmp_path, drift=0.05)
        assert main(["watchdog", "--baseline", baseline, "--current",
                     current, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_regressions"] == 1

    def test_dash_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        ledger = PredictionLedger(str(path))
        for run in range(2):
            if run:
                ledger.rotate_run()
            ledger.append(
                {"kernel": "a", "errors": {"mt_mshr_band": 0.05 + 0.01 * run}}
            )
        out = tmp_path / "dash.html"
        assert main(["dash", str(path), "--out", str(out)]) == 0
        assert "2 run(s)" in capsys.readouterr().out
        assert "<svg" in out.read_text()

    def test_dash_empty_ledger_errors(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["dash", str(path),
                     "--out", str(tmp_path / "x.html")]) == 2

    def test_validate_with_ledger_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        assert main(["--ledger", str(path), "validate", "vectoradd",
                     "--scale", "tiny", "--warps", "4", "-q"]) == 0
        records = read_ledger(str(path))
        assert len(records) == 1
        assert validate(records[0], load_schema("ledger")) == []

    def test_serve_metrics_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve-metrics", "--suite-kernel", "vectoradd",
             "--repeat", "2", "--port", "0", "--scale", "tiny"]
        )
        assert args.command == "serve-metrics"
        assert args.kernels == ["vectoradd"]
        assert args.repeat == 2

    def test_profile_sample_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["profile", "--sample", "--sample-out", "x.txt",
             "--sample-interval", "0.005", "--scale", "tiny"]
        )
        assert args.sample and args.sample_out == "x.txt"
        assert args.sample_interval == 0.005
