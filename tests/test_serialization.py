"""Tests for trace persistence and the DRAM channel extension."""

import os

import numpy as np
import pytest

from repro.config import ConfigError, GPUConfig
from repro.memory.dram import DRAMSystem
from repro.pipeline.stages import trace_digest
from repro.timing import TimingSimulator
from repro.trace import emulate, load_trace, save_trace
from repro.trace.serialization import COLUMN_DTYPES, TraceFormatError

from tests.conftest import build_divergent_load, build_saxpy


class TestTraceSerialization:
    def roundtrip(self, kernel, tmp_path):
        config = GPUConfig.small()
        trace = emulate(kernel, config)
        path = os.path.join(tmp_path, "trace.npz")
        save_trace(trace, path)
        return trace, load_trace(path)

    def test_roundtrip_preserves_everything(self, tmp_path):
        original, loaded = self.roundtrip(build_saxpy(), tmp_path)
        assert loaded.kernel_name == original.kernel_name
        assert loaded.warp_size == original.warp_size
        assert loaded.line_size == original.line_size
        assert loaded.n_blocks == original.n_blocks
        assert loaded.n_warps == original.n_warps
        for a, b in zip(original.warps, loaded.warps):
            assert a.warp_id == b.warp_id and a.block_id == b.block_id
            assert np.array_equal(a.pcs, b.pcs)
            assert np.array_equal(a.ops, b.ops)
            assert np.array_equal(a.deps, b.deps)
            assert np.array_equal(a.active, b.active)
            assert np.array_equal(a.req_offsets, b.req_offsets)
            assert np.array_equal(a.req_lines, b.req_lines)

    def test_loaded_trace_simulates_identically(self, tmp_path):
        config = GPUConfig.small(n_cores=2, warps_per_core=4)
        original, loaded = self.roundtrip(
            build_divergent_load(n_threads=256, block_size=64), tmp_path
        )
        a = TimingSimulator(config).run(original)
        b = TimingSimulator(config).run(loaded)
        assert a.total_cycles == b.total_cycles
        assert a.total_insts == b.total_insts

    def test_rejects_non_trace_archive(self, tmp_path):
        path = os.path.join(tmp_path, "other.npz")
        np.savez(path, data=np.arange(4))
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_rejects_wrong_version(self, tmp_path):
        import json

        path = os.path.join(tmp_path, "old.npz")
        header = json.dumps({"format_version": 999}).encode()
        np.savez(path, header=np.frombuffer(header, dtype=np.uint8))
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestDtypeStability:
    """Archives must round-trip the canonical column dtypes exactly —
    the content-addressed store hashes raw column bytes, so any drift
    silently forks the artifact cache."""

    def roundtrip(self, tmp_path, mutate=None):
        trace = emulate(build_saxpy(), GPUConfig.small())
        path = os.path.join(tmp_path, "trace.npz")
        save_trace(trace, path)
        if mutate is not None:
            with np.load(path) as archive:
                arrays = {k: archive[k] for k in archive.files}
            mutate(arrays)
            np.savez(path, **arrays)
        return trace, load_trace(path)

    def test_roundtrip_preserves_dtypes_and_shapes(self, tmp_path):
        original, loaded = self.roundtrip(tmp_path)
        for a, b in zip(original.warps, loaded.warps):
            for name, spec in COLUMN_DTYPES.items():
                column = getattr(b, name)
                assert column.dtype == spec, name
                assert column.shape == getattr(a, name).shape, name

    def test_digest_survives_roundtrip(self, tmp_path):
        original, loaded = self.roundtrip(tmp_path)
        assert trace_digest(loaded) == trace_digest(original)

    def test_foreign_widths_are_normalized(self, tmp_path):
        # A hand-built archive using platform-default ints (e.g. pcs as
        # int64) must load as the canonical columns — same digest.
        def widen(arrays):
            arrays["w0_pcs"] = arrays["w0_pcs"].astype(np.int64)
            arrays["w0_active"] = arrays["w0_active"].astype(np.int32)

        original, loaded = self.roundtrip(tmp_path, mutate=widen)
        assert loaded.warps[0].pcs.dtype == np.dtype(np.int32)
        assert loaded.warps[0].active.dtype == np.dtype(np.int16)
        assert trace_digest(loaded) == trace_digest(original)

    def test_rejects_values_that_do_not_fit(self, tmp_path):
        def overflow(arrays):
            pcs = arrays["w0_pcs"].astype(np.int64)
            pcs[0] = 2**40  # does not survive the cast to int32
            arrays["w0_pcs"] = pcs

        with pytest.raises(TraceFormatError):
            self.roundtrip(tmp_path, mutate=overflow)

    def test_rejects_missing_column(self, tmp_path):
        def drop(arrays):
            del arrays["w0_deps"]

        with pytest.raises(TraceFormatError):
            self.roundtrip(tmp_path, mutate=drop)


class TestDRAMChannels:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GPUConfig(n_dram_channels=0)

    def test_single_channel_matches_plain_queue(self):
        from repro.memory.dram import DRAMQueue

        system = DRAMSystem(2.0, 1, 128)
        queue = DRAMQueue(2.0)
        for arrival, line in [(0.0, 0), (0.0, 128), (5.0, 4096)]:
            assert system.enqueue(arrival, line) == queue.enqueue(arrival)

    def test_interleaving_splits_by_line(self):
        system = DRAMSystem(1.0, 4, 128)
        assert system.channel_of(0) == 0
        assert system.channel_of(128) == 1
        assert system.channel_of(512) == 0
        # Requests to different channels do not queue behind each other.
        a = system.enqueue(0.0, 0)
        b = system.enqueue(0.0, 128)
        assert a == b  # both start immediately on their own channel

    def test_per_channel_service_slower(self):
        # Same aggregate bandwidth: each of 4 channels is 4x slower.
        one = DRAMSystem(1.0, 1, 128)
        four = DRAMSystem(1.0, 4, 128)
        assert four.enqueue(0.0, 0) == pytest.approx(4 * one.enqueue(0.0, 0))

    def test_aggregate_stats(self):
        system = DRAMSystem(1.0, 2, 128)
        system.enqueue(0.0, 0)
        system.enqueue(0.0, 128)
        assert system.n_requests == 2
        assert system.mean_queue_delay == 0.0
        assert 0.0 < system.utilization(10.0) <= 1.0

    def test_oracle_runs_with_channels(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            n_dram_channels=4
        )
        trace = emulate(build_divergent_load(128, 64), config)
        stats = TimingSimulator(config).run(trace)
        assert stats.total_insts == trace.total_insts

    def test_model_wait_scales_with_channels(self):
        from repro.core.contention import dram_queuing_delay

        one = GPUConfig.small()
        four = GPUConfig.small().with_(n_dram_channels=4)
        # Sub-saturation: same utilisation, slower servers -> longer wait.
        wait_one = dram_queuing_delay(50.0, 1000.0, one)
        wait_four = dram_queuing_delay(50.0, 1000.0, four)
        assert wait_four == pytest.approx(4 * wait_one)
