"""Unit tests for the mini ISA: instructions, builder, kernel validation."""

import pytest

from repro.isa import CmpOp, Imm, Instruction, Kernel, KernelBuilder, Reg, Special
from repro.isa.builder import BuilderError
from repro.isa.instructions import OpClass, opcode_class
from repro.isa.kernel import KernelValidationError


class TestInstruction:
    def test_basic_alu(self):
        inst = Instruction("iadd", dst=Reg(0), srcs=(Reg(1), Imm(4)))
        assert inst.opclass is OpClass.IALU
        assert inst.source_registers == (Reg(1),)

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            Instruction("xor", dst=Reg(0), srcs=(Reg(1), Reg(2)))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            Instruction("iadd", dst=Reg(0), srcs=(Reg(1),))

    def test_missing_destination(self):
        with pytest.raises(ValueError):
            Instruction("iadd", srcs=(Reg(1), Reg(2)))

    def test_store_has_no_destination(self):
        with pytest.raises(ValueError):
            Instruction("st", dst=Reg(0), srcs=(Reg(1), Reg(2)))

    def test_setp_requires_cmp(self):
        with pytest.raises(ValueError):
            Instruction("setp", dst=Reg(0), srcs=(Reg(1), Imm(0)))

    def test_cmp_only_on_setp(self):
        with pytest.raises(ValueError):
            Instruction("iadd", dst=Reg(0), srcs=(Reg(1), Imm(0)),
                        cmp_op=CmpOp.LT)

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction("bra")

    def test_branch_fields_rejected_elsewhere(self):
        with pytest.raises(ValueError):
            Instruction("mov", dst=Reg(0), srcs=(Imm(1),), target=0)

    def test_source_registers_include_predicate(self):
        inst = Instruction("bra", target=0, reconv=1, pred=Reg(5))
        assert Reg(5) in inst.source_registers

    def test_ffma_three_sources(self):
        inst = Instruction("ffma", dst=Reg(0), srcs=(Reg(1), Reg(2), Reg(3)))
        assert len(inst.source_registers) == 3

    def test_negative_register_index(self):
        with pytest.raises(ValueError):
            Reg(-1)

    def test_opcode_class_lookup(self):
        assert opcode_class("fmul") is OpClass.FALU
        assert opcode_class("fsqrt") is OpClass.SFU
        with pytest.raises(ValueError):
            opcode_class("nop")

    def test_latency_classes(self):
        assert OpClass.IALU.latency_class == "ialu"
        assert OpClass.BRANCH.latency_class == "ialu"
        assert OpClass.SFU.latency_class == "sfu"
        with pytest.raises(ValueError):
            OpClass.LOAD.latency_class


class TestBuilder:
    def test_fresh_registers(self):
        b = KernelBuilder("k")
        r1, r2 = b.alloc(), b.alloc()
        assert r1 != r2

    def test_numbers_become_immediates(self):
        b = KernelBuilder("k")
        dst = b.iadd(b.tid(), 7)
        b.exit()
        kernel = b.build(32, 32)
        assert kernel.program[1].srcs[1] == Imm(7)
        assert dst == kernel.program[1].dst

    def test_special_accessors(self):
        b = KernelBuilder("k")
        b.tid(), b.lane(), b.warpid(), b.ctaid(), b.ntid()
        b.exit()
        kernel = b.build(32, 32)
        specials = [inst.srcs[0] for inst in kernel.program[:5]]
        assert specials == [
            Special.TID, Special.LANE, Special.WARP, Special.CTAID,
            Special.NTID,
        ]

    def test_label_resolution_backward(self):
        b = KernelBuilder("k")
        counter = b.mov(0)
        head = b.label()
        b.iadd(counter, 1, dst=counter)
        pred = b.setp_lt(counter, 3)
        b.bra(head, pred=pred)
        b.exit()
        kernel = b.build(32, 32)
        bra = kernel.program[3]
        assert bra.target == 1
        assert bra.reconv == 4  # backward branch reconverges at fall-through

    def test_forward_branch_reconverges_at_target(self):
        b = KernelBuilder("k")
        pred = b.setp_lt(b.lane(), 8)
        with b.if_(pred):
            b.fadd(Imm(1.0), Imm(2.0))
        b.exit()
        kernel = b.build(32, 32)
        bra = next(i for i in kernel.program if i.opcode == "bra")
        assert bra.target == bra.reconv

    def test_undefined_label(self):
        b = KernelBuilder("k")
        b.bra("nowhere")
        b.exit()
        with pytest.raises(BuilderError):
            b.build(32, 32)

    def test_undefined_reconv_label(self):
        b = KernelBuilder("k")
        pred = b.setp_lt(b.lane(), 8)
        target = b.label()
        b.bra(target, pred=pred, reconv="nowhere")
        b.exit()
        with pytest.raises(BuilderError, match="nowhere"):
            b.build(32, 32)

    def test_explicit_reconv_label_resolves(self):
        b = KernelBuilder("k")
        pred = b.setp_lt(b.lane(), 8)
        b.bra("join", pred=pred, reconv="join")
        b.label("join")
        b.exit()
        kernel = b.build(32, 32)
        bra = next(i for i in kernel.program if i.opcode == "bra")
        assert bra.reconv == bra.target == len(kernel.program) - 1

    def test_duplicate_label(self):
        b = KernelBuilder("k")
        b.label("spot")
        with pytest.raises(BuilderError):
            b.label("spot")

    def test_builder_single_use(self):
        b = KernelBuilder("k")
        b.exit()
        b.build(32, 32)
        with pytest.raises(BuilderError):
            b.exit()

    def test_invalid_operand(self):
        b = KernelBuilder("k")
        with pytest.raises(BuilderError):
            b.iadd("oops", 1)


class TestKernelValidation:
    def test_program_must_end_with_exit(self):
        with pytest.raises(KernelValidationError):
            Kernel("k", (Instruction("mov", dst=Reg(0), srcs=(Imm(1),)),),
                   n_threads=32, block_size=32)

    def test_threads_multiple_of_block(self):
        b = KernelBuilder("k")
        b.exit()
        with pytest.raises(KernelValidationError):
            b.build(100, 64)

    def test_branch_target_in_range(self):
        program = (Instruction("bra", target=5), Instruction("exit"))
        with pytest.raises(KernelValidationError):
            Kernel("k", program, n_threads=32, block_size=32)

    def test_conditional_branch_needs_reconv(self):
        program = (
            Instruction("setp", dst=Reg(0), srcs=(Imm(1), Imm(0)),
                        cmp_op=CmpOp.LT),
            Instruction("bra", target=2, pred=Reg(0)),
            Instruction("exit"),
        )
        with pytest.raises(KernelValidationError):
            Kernel("k", program, n_threads=32, block_size=32)

    def test_geometry_properties(self):
        b = KernelBuilder("k")
        b.exit()
        kernel = b.build(n_threads=256, block_size=64)
        assert kernel.n_warps == 8
        assert kernel.n_blocks == 4
        assert kernel.warps_per_block == 2

    def test_max_register(self):
        b = KernelBuilder("k")
        b.iadd(b.tid(), 1)
        b.exit()
        kernel = b.build(32, 32)
        assert kernel.max_register == 1

    def test_describe_mentions_name(self):
        b = KernelBuilder("mykernel")
        b.exit()
        assert "mykernel" in b.build(32, 32).describe()
