"""Integration tests for the GPUMech facade (trace -> prediction)."""

import pytest

from repro.config import GPUConfig
from repro.core.model import GPUMech, resident_warps_per_core
from repro.core.cpi_stack import StallType
from repro.trace import emulate

from tests.conftest import build_divergent_load, build_fp_chain, build_saxpy


@pytest.fixture
def config():
    return GPUConfig.small(n_cores=2, warps_per_core=8)


class TestPrepare:
    def test_prepare_from_kernel(self, config):
        model = GPUMech(config)
        inputs = model.prepare(build_saxpy())
        assert inputs.trace.kernel_name == "saxpy"
        assert len(inputs.profiles) == inputs.trace.n_warps
        assert inputs.representative in inputs.profiles

    def test_prepare_from_trace(self, config):
        trace = emulate(build_saxpy(), config)
        inputs = GPUMech(config).prepare(trace=trace)
        assert inputs.trace is trace

    def test_prepare_requires_input(self, config):
        with pytest.raises(ValueError):
            GPUMech(config).prepare()

    def test_selection_strategy_forwarded(self, config):
        model = GPUMech(config, selection_strategy="max")
        inputs = model.prepare(build_saxpy())
        assert inputs.selection.strategy == "max"


class TestPredict:
    def test_eq3_composition(self, config):
        model = GPUMech(config)
        prediction = model.predict_kernel(build_divergent_load())
        assert prediction.cpi == pytest.approx(
            prediction.cpi_multithreading + prediction.cpi_mshr
            + prediction.cpi_queue
        )
        assert prediction.cpi_contention == pytest.approx(
            prediction.cpi_mshr + prediction.cpi_queue
        )
        assert prediction.ipc == pytest.approx(1 / prediction.cpi)

    def test_stack_total_equals_cpi(self, config):
        prediction = GPUMech(config).predict_kernel(build_divergent_load())
        assert prediction.cpi_stack.total == pytest.approx(prediction.cpi)

    def test_policy_override(self, config):
        model = GPUMech(config)
        inputs = model.prepare(build_saxpy())
        rr = model.predict(inputs, policy="rr")
        gto = model.predict(inputs, policy="gto")
        assert rr.policy == "rr" and gto.policy == "gto"

    def test_n_warps_override(self, config):
        model = GPUMech(config)
        inputs = model.prepare(build_fp_chain(length=8, n_threads=512,
                                              block_size=64))
        one = model.predict(inputs, n_warps=1)
        eight = model.predict(inputs, n_warps=8)
        assert eight.cpi < one.cpi  # multithreading hides stalls
        assert one.cpi == pytest.approx(one.single_warp_cpi)

    def test_compute_kernel_has_no_contention(self, config):
        prediction = GPUMech(config).predict_kernel(
            build_fp_chain(length=8, n_threads=512, block_size=64)
        )
        assert prediction.cpi_mshr == 0.0
        assert prediction.cpi_queue == 0.0
        assert prediction.cpi_stack[StallType.DEP] > 0.0

    def test_divergent_kernel_has_mshr_pressure(self, config):
        prediction = GPUMech(config).predict_kernel(
            build_divergent_load(n_threads=512, block_size=64)
        )
        assert prediction.cpi_mshr > 0.0

    def test_summary_text(self, config):
        prediction = GPUMech(config).predict_kernel(build_saxpy())
        text = prediction.summary()
        assert "saxpy" in text and "CPI" in text


class TestResidentWarps:
    def test_limited_by_warp_slots(self, config):
        # 8 blocks of 2 warps on 2 cores with 8 slots: 4 blocks resident.
        trace = emulate(build_saxpy(n_threads=512, block_size=64), config)
        assert resident_warps_per_core(trace, config) == 8

    def test_limited_by_available_blocks(self, config):
        # 2 blocks of 2 warps on 2 cores: one block (2 warps) per core.
        trace = emulate(build_saxpy(n_threads=128, block_size=64), config)
        assert resident_warps_per_core(trace, config) == 2

    def test_explicit_override(self, config):
        trace = emulate(build_saxpy(n_threads=512, block_size=64), config)
        assert resident_warps_per_core(trace, config, warps_per_core=4) == 4

    def test_block_granularity(self, config):
        # 3-warp blocks with an 8-slot core: only 2 blocks (6 warps) fit.
        trace = emulate(build_saxpy(n_threads=576, block_size=96), config)
        assert resident_warps_per_core(trace, config) == 6
