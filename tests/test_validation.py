"""Tests for the aggregate validation metrics."""

import math

import pytest

from repro.config import GPUConfig
from repro.harness.runner import MODELS, Runner
from repro.harness.validation import (
    render_validation,
    validate_all,
    validate_model,
)
from repro.workloads import Scale


@pytest.fixture(scope="module")
def results():
    runner = Runner(GPUConfig.small(n_cores=2, warps_per_core=8),
                    Scale.tiny())
    kernels = ["vectoradd", "strided_deg8", "strided_deg32", "mandelbrot",
               "sad_calc_8"]
    return [runner.evaluate(name) for name in kernels]


class TestValidateModel:
    def test_error_statistics(self, results):
        v = validate_model(results, "mt_mshr_band")
        assert v.n == len(results)
        assert 0.0 <= v.median_error <= v.max_error
        assert v.mean_error <= v.max_error
        assert 0.0 <= v.fraction_under_20pct <= 1.0

    def test_correlations_strong_for_gpumech(self, results):
        v = validate_model(results, "mt_mshr_band")
        # The kernel set spans CPI ~1 to ~70: a usable model must rank
        # them correctly and correlate strongly.
        assert v.spearman_rho == pytest.approx(1.0)
        assert v.pearson_r > 0.95

    def test_naive_ranks_worse_or_equal(self, results):
        naive = validate_model(results, "naive")
        band = validate_model(results, "mt_mshr_band")
        assert band.mean_error <= naive.mean_error

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_model([], "naive")

    def test_degenerate_correlation_is_nan(self, results):
        one = validate_model(results[:1], "naive")
        assert math.isnan(one.pearson_r)


class TestValidateAll:
    def test_covers_all_models(self, results):
        validations = validate_all(results)
        assert set(validations) == set(MODELS)

    def test_render(self, results):
        text = render_validation(validate_all(results))
        assert "spearman rho" in text
        assert "MT_MSHR_BAND" in text
