"""Tests for block-level barriers (``__syncthreads()``).

The paper deliberately does *not* model synchronisation (Sec. V-B:
"since the warps in a thread block are likely to make similar progress,
the within-thread-block synchronization overhead is typically low").
We implement real barriers in the oracle — warps park until all their
block-mates arrive — keep the model barrier-blind as the paper
prescribes, and *test the paper's claim*: the extra model error due to
ignoring barriers stays small on balanced kernels.
"""

import pytest

from repro.config import GPUConfig
from repro.core.model import GPUMech
from repro.isa import KernelBuilder
from repro.isa.instructions import OpClass
from repro.timing import TimingSimulator
from repro.trace import EmulatorError, OpCode, emulate


def barrier_kernel(n_phases=3, skewed=False, n_threads=256, block_size=128):
    """Compute phases separated by barriers; optional per-warp skew."""
    b = KernelBuilder("barriers")
    tid = b.tid()
    acc = b.ld(b.iadd(b.imul(tid, 4), 0x100000))
    if skewed:
        # Warp 0 of each block does extra work before the first barrier.
        warp_in_block = b.imod(b.idiv(tid, 32), block_size // 32)
        is_first = b.setp_eq(warp_in_block, 0)
        with b.if_(is_first):
            for _ in range(6):
                acc = b.fmul(acc, 1.01, dst=acc)
    for _ in range(n_phases):
        acc = b.ffma(acc, 1.1, 0.2, dst=acc)
        b.bar()
    b.st(b.iadd(b.imul(tid, 4), 0x100000), acc, offset=1 << 22)
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


class TestISA:
    def test_bar_opcode(self):
        b = KernelBuilder("k")
        b.bar()
        b.exit()
        kernel = b.build(32, 32)
        assert kernel.program[0].opclass is OpClass.BARRIER

    def test_trace_records_barriers(self):
        config = GPUConfig.small()
        trace = emulate(barrier_kernel(n_phases=2), config)
        for warp in trace.warps:
            assert int((warp.ops == OpCode.BARRIER).sum()) == 2

    def test_barrier_under_divergence_rejected(self):
        b = KernelBuilder("bad")
        pred = b.setp_lt(b.lane(), 8)
        with b.if_(pred):
            b.bar()
        b.exit()
        kernel = b.build(32, 32)
        with pytest.raises(EmulatorError):
            emulate(kernel, GPUConfig.small())


class TestOracleBarriers:
    def config(self):
        return GPUConfig.small(n_cores=1, warps_per_core=8)

    def test_skewed_block_waits(self):
        config = self.config()
        trace = emulate(barrier_kernel(skewed=True), config)
        stats = TimingSimulator(config).run(trace)
        assert sum(c.barrier_stall_cycles for c in stats.cores) > 0

    def test_barrier_serialises_skewed_work(self):
        """With a skewed warp, barriers force the fast warps to wait."""
        config = self.config()
        with_bar = TimingSimulator(config).run(
            emulate(barrier_kernel(n_phases=3, skewed=True), config)
        )

        # The same kernel without barriers lets fast warps run ahead.
        b = KernelBuilder("nobar")
        tid = b.tid()
        acc = b.ld(b.iadd(b.imul(tid, 4), 0x100000))
        warp_in_block = b.imod(b.idiv(tid, 32), 4)
        is_first = b.setp_eq(warp_in_block, 0)
        with b.if_(is_first):
            for _ in range(6):
                acc = b.fmul(acc, 1.01, dst=acc)
        for _ in range(3):
            acc = b.ffma(acc, 1.1, 0.2, dst=acc)
        b.st(b.iadd(b.imul(tid, 4), 0x100000), acc, offset=1 << 22)
        b.exit()
        without_bar = TimingSimulator(config).run(
            emulate(b.build(256, 128), config)
        )
        assert with_bar.total_cycles >= without_bar.total_cycles

    def test_all_warps_pass(self):
        config = self.config()
        trace = emulate(barrier_kernel(n_phases=4), config)
        stats = TimingSimulator(config).run(trace)
        assert stats.total_insts == trace.total_insts  # no deadlock

    def test_cycle_skipping_equivalence_with_barriers(self):
        config = self.config()
        trace = emulate(barrier_kernel(n_phases=3, skewed=True), config)
        fast = TimingSimulator(config, cycle_skipping=True).run(trace)
        slow = TimingSimulator(config, cycle_skipping=False).run(trace)
        assert fast.total_cycles == slow.total_cycles


class TestPaperClaim:
    def test_ignoring_barriers_costs_little_on_balanced_kernels(self):
        """Sec. V-B's justification, quantified: for a balanced kernel the
        barrier-blind model's error grows only modestly when the oracle
        enforces real barriers."""
        config = GPUConfig.small(n_cores=2, warps_per_core=16)
        kernel = barrier_kernel(n_phases=4, n_threads=2048)
        trace = emulate(kernel, config)
        oracle = TimingSimulator(config).run(trace)
        model = GPUMech(config)
        prediction = model.predict(model.prepare(trace=trace))
        error = abs(prediction.cpi - oracle.cpi) / oracle.cpi
        assert error < 0.25
