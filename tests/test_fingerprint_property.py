"""Property tests for ``GPUConfig.fingerprint`` — the cache-key primitive.

The contract the whole artifact store rests on: the fingerprint of a
field subset changes **iff** a field in that subset changes, and is
stable across process spawns (no ``PYTHONHASHSEED`` or dict-order
dependence).  The fuzz covers every fingerprinted field, including the
architecture-backend ones (``arch``/``n_schedulers``); validation
couples a few fields, so each mutation names the full set of fields it
touches and the iff-property is asserted against that set.
"""

import os
import random
import subprocess
import sys

import pytest

import repro
from repro.config import ALL_FIELDS, GPUConfig

#: One validation-respecting mutation per field: field -> overrides.
#: Coupled constraints (``simt_width == warp_size``) make some
#: mutations touch several fields at once; ``issue_width`` is pinned to
#: 1 by validation and therefore has no legal mutation at all.
MUTATIONS = {
    "n_cores": {"n_cores": 8},
    "core_clock_ghz": {"core_clock_ghz": 1.4},
    "warp_size": {"warp_size": 64, "simt_width": 64},
    "simt_width": {"simt_width": 64, "warp_size": 64},
    "max_threads_per_core": {"max_threads_per_core": 512},
    "scheduler": {"scheduler": "gto"},
    "line_size": {"line_size": 64},
    "l1_size": {"l1_size": 64 * 1024},
    "l1_assoc": {"l1_assoc": 4},
    "l1_latency": {"l1_latency": 30},
    "l2_size": {"l2_size": 1536 * 1024},
    "l2_assoc": {"l2_assoc": 16},
    "l2_latency": {"l2_latency": 150},
    "n_mshrs": {"n_mshrs": 64},
    "dram_latency": {"dram_latency": 400},
    "dram_bandwidth_gbps": {"dram_bandwidth_gbps": 96.0},
    "n_dram_channels": {"n_dram_channels": 2},
    "smem_size": {"smem_size": 32 * 1024},
    "smem_latency": {"smem_latency": 20},
    "smem_banks": {"smem_banks": 16},
    "n_sfu_units": {"n_sfu_units": 16},
    "op_latencies": {
        "op_latencies": {"ialu": 4, "falu": 25, "sfu": 80}
    },
    "arch": {"arch": "subcore"},
    "n_schedulers": {"n_schedulers": 8},
}

UNMUTABLE = frozenset({"issue_width"})  # pinned to 1 by validation

BASE = GPUConfig()


def test_every_field_has_a_mutation():
    assert frozenset(MUTATIONS) | UNMUTABLE == ALL_FIELDS


@pytest.mark.parametrize("field", sorted(MUTATIONS))
def test_full_fingerprint_changes_with_each_field(field):
    mutated = BASE.with_(**MUTATIONS[field])
    assert mutated.fingerprint(ALL_FIELDS) != BASE.fingerprint(ALL_FIELDS)


@pytest.mark.parametrize("field", sorted(MUTATIONS))
def test_disjoint_subset_fingerprint_is_invariant(field):
    changed = set(MUTATIONS[field])
    others = ALL_FIELDS - changed
    mutated = BASE.with_(**MUTATIONS[field])
    assert mutated.fingerprint(others) == BASE.fingerprint(others)


def test_fuzz_changes_iff_subset_intersects_mutation():
    rng = random.Random(0xF1A9)
    fields = sorted(ALL_FIELDS)
    for _ in range(300):
        subset = frozenset(
            f for f in fields if rng.random() < rng.uniform(0.1, 0.9)
        )
        field = rng.choice(sorted(MUTATIONS))
        changed = set(MUTATIONS[field])
        mutated = BASE.with_(**MUTATIONS[field])
        same = mutated.fingerprint(subset) == BASE.fingerprint(subset)
        if subset & changed:
            assert not same, (field, sorted(subset))
        else:
            assert same, (field, sorted(subset))


def test_fingerprint_ignores_construction_history():
    # with_() round-trips and dict insertion order must not matter.
    direct = GPUConfig(scheduler="gto", n_cores=8)
    rebuilt = GPUConfig().with_(n_cores=8).with_(scheduler="gto")
    reordered = GPUConfig(
        scheduler="gto",
        n_cores=8,
        op_latencies={"sfu": 40, "falu": 25, "ialu": 4},
    )
    assert direct.fingerprint(ALL_FIELDS) == rebuilt.fingerprint(ALL_FIELDS)
    assert direct.fingerprint(ALL_FIELDS) == reordered.fingerprint(
        ALL_FIELDS
    )


def test_fingerprint_stable_across_process_spawns():
    """A fresh interpreter (different hash seed) must agree byte-for-
    byte — on-disk artifact stores outlive the process that wrote them.
    """
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    code = (
        "import sys; sys.path.insert(0, %r)\n"
        "from repro.config import ALL_FIELDS, TRACE_FIELDS, GPUConfig\n"
        "c = GPUConfig(scheduler='gto', arch='subcore', n_schedulers=8)\n"
        "print(c.fingerprint(ALL_FIELDS))\n"
        "print(c.fingerprint(TRACE_FIELDS))\n" % src_dir
    )
    env = dict(os.environ, PYTHONHASHSEED="12345")
    spawned = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, env=env,
    ).stdout.split()
    here = GPUConfig(scheduler="gto", arch="subcore", n_schedulers=8)
    from repro.config import TRACE_FIELDS

    assert spawned == [
        here.fingerprint(ALL_FIELDS),
        here.fingerprint(TRACE_FIELDS),
    ]
