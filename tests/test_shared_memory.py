"""Tests for the shared-memory (scratchpad) extension — Table I's
"16 KB software managed cache" with bank-conflict modeling."""

import numpy as np
import pytest

from repro.config import ConfigError, GPUConfig
from repro.core.model import GPUMech
from repro.isa import KernelBuilder
from repro.timing import TimingSimulator
from repro.trace import OpCode, emulate
from repro.trace.emulator import bank_conflict_degree


class TestBankConflicts:
    def degree(self, addrs, mask=None):
        addrs = np.asarray(addrs, dtype=np.int64)
        mask = (
            np.ones(len(addrs), dtype=bool) if mask is None
            else np.asarray(mask, dtype=bool)
        )
        return bank_conflict_degree(addrs, mask, n_banks=32)

    def test_conflict_free_unit_stride(self):
        assert self.degree([lane * 4 for lane in range(32)]) == 1

    def test_same_bank_full_conflict(self):
        # Stride of 32 words: every lane maps to bank 0.
        assert self.degree([lane * 32 * 4 for lane in range(32)]) == 32

    def test_broadcast_counts_once(self):
        assert self.degree([64] * 32) == 1

    def test_two_way_conflict(self):
        # Stride of 2 words: lanes pair up on the 16 even banks.
        assert self.degree([lane * 2 * 4 for lane in range(32)]) == 2

    def test_sixteen_way_conflict(self):
        # Stride of 16 words: all lanes alternate between banks 0 and 16.
        assert self.degree([lane * 16 * 4 for lane in range(32)]) == 16

    def test_masked_lanes_ignored(self):
        addrs = [lane * 32 * 4 for lane in range(32)]
        mask = [lane < 4 for lane in range(32)]
        assert self.degree(addrs, mask) == 4

    def test_empty_mask(self):
        assert self.degree([0, 4], [False, False]) == 0


class TestEmulation:
    def run_warp(self, build_fn):
        b = KernelBuilder("smem")
        build_fn(b)
        b.exit()
        kernel = b.build(32, 32)
        return emulate(kernel, GPUConfig()).warps[0]

    def test_conflict_recorded_in_trace(self):
        def build(b):
            lane = b.lane()
            b.lds(b.imul(lane, 4))      # conflict-free
            b.lds(b.imul(lane, 128))    # 32-way conflict

        warp = self.run_warp(build)
        smem = np.flatnonzero(warp.ops == OpCode.SMEM_LOAD)
        assert warp.conflict[smem[0]] == 1
        assert warp.conflict[smem[1]] == 32

    def test_non_smem_conflict_zero(self):
        def build(b):
            b.ld(b.iadd(b.imul(b.tid(), 4), 0x10000))

        warp = self.run_warp(build)
        assert (warp.conflict[warp.ops == OpCode.LOAD] == 0).all()

    def test_read_own_write(self):
        def build(b):
            lane = b.lane()
            word = b.imul(lane, 4)
            b.sts(word, 7.5)
            value = b.lds(word)
            b.st(b.imul(b.tid(), 4), value, offset=1 << 22)

        warp = self.run_warp(build)  # executes without error
        assert (warp.ops == OpCode.SMEM_STORE).sum() == 1

    def test_smem_ops_issue_no_global_requests(self):
        def build(b):
            b.lds(b.imul(b.lane(), 4))

        warp = self.run_warp(build)
        smem = np.flatnonzero(warp.ops == OpCode.SMEM_LOAD)
        assert warp.n_requests(int(smem[0])) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GPUConfig(smem_banks=0)
        with pytest.raises(ConfigError):
            GPUConfig(smem_latency=0)


def staging_kernel(stride_words, n_accesses=8, n_threads=256, block_size=64):
    """Load from global, stage through shared memory at a given stride."""
    b = KernelBuilder("stage%d" % stride_words)
    lane = b.lane()
    value = b.ld(b.iadd(b.imul(b.tid(), 4), 0x100000))
    slot = b.imul(lane, stride_words * 4)
    acc = b.mov(0.0)
    for i in range(n_accesses):
        b.sts(slot, value, offset=i * 4)
        staged = b.lds(slot, offset=i * 4)
        acc = b.fadd(acc, staged, dst=acc)
    b.st(b.iadd(b.imul(b.tid(), 4), 0x100000), acc, offset=1 << 22)
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


class TestOracle:
    def test_conflicts_slow_the_oracle(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        clean = TimingSimulator(config).run(
            emulate(staging_kernel(stride_words=1), config)
        )
        conflicted = TimingSimulator(config).run(
            emulate(staging_kernel(stride_words=32), config)
        )
        assert conflicted.total_cycles > clean.total_cycles

    def test_cycle_skipping_equivalence_with_smem(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        trace = emulate(staging_kernel(stride_words=32, n_threads=128),
                        config)
        fast = TimingSimulator(config, cycle_skipping=True).run(trace)
        slow = TimingSimulator(config, cycle_skipping=False).run(trace)
        assert fast.total_cycles == slow.total_cycles


class TestModel:
    def test_model_tracks_conflict_direction(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        model = GPUMech(config)
        clean = model.predict_kernel(staging_kernel(stride_words=1))
        conflicted = model.predict_kernel(staging_kernel(stride_words=32))
        assert conflicted.cpi > clean.cpi
        assert conflicted.cpi_smem > 0.0
        assert clean.cpi_smem == pytest.approx(0.0, abs=0.2)

    def test_model_matches_oracle_on_conflicted_kernel(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        kernel = staging_kernel(stride_words=32)
        trace = emulate(kernel, config)
        oracle = TimingSimulator(config).run(trace)
        prediction = GPUMech(config).predict_kernel(kernel)
        error = abs(prediction.cpi - oracle.cpi) / oracle.cpi
        assert error < 0.35

    def test_stack_has_smem_category(self):
        from repro.core.cpi_stack import StallType

        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        prediction = GPUMech(config).predict_kernel(
            staging_kernel(stride_words=32)
        )
        assert prediction.cpi_stack[StallType.SMEM] == pytest.approx(
            prediction.cpi_smem
        )
