"""Unit tests for the interval algorithm (Sec. III-B, Fig. 6)."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.core.interval import Interval, IntervalProfile, build_interval_profile
from repro.core.latency import LatencyTable
from repro.trace.trace_types import MAX_DEPS, NO_DEP, OpCode, WarpTrace


def make_trace(rows, req_counts=None):
    """Build a WarpTrace from (pc, op, deps) rows."""
    n = len(rows)
    req_counts = req_counts or [0] * n
    deps = np.full((n, MAX_DEPS), NO_DEP, dtype=np.int32)
    for i, (_, _, row_deps) in enumerate(rows):
        for j, dep in enumerate(row_deps):
            deps[i, j] = dep
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(req_counts, out=offsets[1:])
    return WarpTrace(
        warp_id=0,
        block_id=0,
        pcs=np.array([r[0] for r in rows], dtype=np.int32),
        ops=np.array([int(r[1]) for r in rows], dtype=np.int8),
        deps=deps,
        active=np.full(n, 32, dtype=np.int16),
        req_offsets=offsets,
        req_lines=np.arange(int(offsets[-1]), dtype=np.int64) * 128,
    )


def make_latency_table(latencies):
    """LatencyTable with explicit per-PC latencies and no cache stats."""
    return LatencyTable(
        np.asarray(latencies, dtype=np.float64), {}, GPUConfig()
    )


class TestIntervalAlgorithm:
    def test_no_dependencies_single_interval(self):
        rows = [(pc, OpCode.IALU, []) for pc in range(5)]
        profile = build_interval_profile(
            make_trace(rows), make_latency_table([4.0] * 5)
        )
        assert profile.n_intervals == 1
        assert profile.intervals[0].n_insts == 5
        assert profile.intervals[0].stall_cycles == 0.0
        assert profile.total_cycles == 5.0

    def test_dependency_creates_stall(self):
        # i0 (latency 10); i1 depends on i0: issue(i1) = max(1, 0+10) = 10.
        rows = [(0, OpCode.FALU, []), (1, OpCode.FALU, [0])]
        profile = build_interval_profile(
            make_trace(rows), make_latency_table([10.0, 10.0])
        )
        assert profile.n_intervals == 2
        first = profile.intervals[0]
        assert first.n_insts == 1
        assert first.stall_cycles == 9.0
        assert first.cause_pc == 0
        assert profile.total_cycles == 2.0 + 9.0

    def test_paper_figure6_shape(self):
        """Fig. 6: i5 depends on i3 (long latency) -> interval boundary at
        i5; independent instructions in between do not stall."""
        lat = [1.0, 1.0, 1.0, 100.0, 1.0, 1.0, 1.0]
        rows = [
            (0, OpCode.IALU, []),
            (1, OpCode.IALU, []),
            (2, OpCode.IALU, []),
            (3, OpCode.LOAD, []),  # long-latency producer
            (4, OpCode.IALU, []),
            (5, OpCode.IALU, [3]),  # consumer of the load
            (6, OpCode.IALU, []),
        ]
        profile = build_interval_profile(
            make_trace(rows, req_counts=[0, 0, 0, 1, 0, 0, 0]),
            make_latency_table(lat),
        )
        assert profile.n_intervals == 2
        first, second = profile.intervals
        assert first.n_insts == 5  # i0..i4
        # issue(i5) = max(4+1, 3+100) = 103; earliest was 5 -> stall 98.
        assert first.stall_cycles == 98.0
        assert first.cause_pc == 3
        assert first.cause_is_memory
        assert second.n_insts == 2

    def test_cause_is_max_contributor(self):
        # Two producers; the slower one is the cause.
        lat = [5.0, 50.0, 1.0]
        rows = [
            (0, OpCode.IALU, []),
            (1, OpCode.FALU, []),
            (2, OpCode.IALU, [0, 1]),
        ]
        profile = build_interval_profile(
            make_trace(rows), make_latency_table(lat)
        )
        assert profile.intervals[0].cause_pc == 1

    def test_issue_rate_scales_base_cycles(self):
        rows = [(pc, OpCode.IALU, []) for pc in range(4)]
        profile = build_interval_profile(
            make_trace(rows), make_latency_table([1.0] * 4), issue_rate=2.0
        )
        assert profile.total_cycles == pytest.approx(2.0)

    def test_empty_trace(self):
        trace = make_trace([(0, OpCode.EXIT, [])])[0:0] if False else None
        # Build an actually empty trace via slicing machinery is awkward;
        # exercise via profile of a minimal single-exit trace instead.
        profile = build_interval_profile(
            make_trace([(0, OpCode.EXIT, [])]), make_latency_table([1.0])
        )
        assert profile.n_insts == 1


class TestIntervalAccounting:
    def test_memory_footprint_counted(self):
        rows = [
            (0, OpCode.LOAD, []),
            (1, OpCode.STORE, []),
            (2, OpCode.IALU, []),
        ]
        profile = build_interval_profile(
            make_trace(rows, req_counts=[4, 2, 0]),
            make_latency_table([25.0, 1.0, 4.0]),
        )
        interval = profile.intervals[0]
        assert interval.n_loads == 1
        assert interval.n_stores == 1
        assert interval.load_reqs == 4
        assert interval.store_reqs == 2
        assert interval.n_mem_insts == 2

    def test_dram_reqs_includes_stores(self):
        interval = Interval(store_reqs=3, exp_dram_read_reqs=2.5)
        assert interval.dram_reqs == 5.5

    def test_interval_cycles(self):
        interval = Interval(n_insts=4, stall_cycles=6.0)
        assert interval.cycles(1.0) == 10.0
        assert interval.cycles(2.0) == 8.0


class TestProfileAggregates:
    def test_eq5_warp_perf(self):
        profile = IntervalProfile(warp_id=0, issue_rate=1.0)
        profile.intervals.append(Interval(n_insts=1, stall_cycles=10.0))
        profile.intervals.append(Interval(n_insts=4, stall_cycles=10.0))
        # Eq. 5: 5 insts / (5 + 20) cycles.
        assert profile.warp_perf == pytest.approx(5 / 25)
        assert profile.issue_prob == profile.warp_perf
        assert profile.single_warp_cpi == pytest.approx(5.0)
        assert profile.avg_interval_insts == pytest.approx(2.5)

    def test_totals_partition_the_trace(self):
        rows = [
            (0, OpCode.FALU, []),
            (1, OpCode.FALU, [0]),
            (2, OpCode.FALU, [1]),
        ]
        profile = build_interval_profile(
            make_trace(rows), make_latency_table([10.0, 10.0, 10.0])
        )
        assert profile.n_insts == 3
        assert sum(i.n_insts for i in profile.intervals) == 3

    def test_aggregates_computed_once(self):
        # n_insts / total_stall_cycles sit inside per-cycle model loops;
        # they must be cached on first access, not re-summed per call.
        profile = IntervalProfile(warp_id=0)
        profile.intervals.append(Interval(n_insts=2, stall_cycles=5.0))
        assert profile.n_insts == 2
        assert profile.total_stall_cycles == 5.0
        # Were the properties re-summing, this append would change them.
        profile.intervals.append(Interval(n_insts=7, stall_cycles=9.0))
        assert profile.n_insts == 2
        assert profile.total_stall_cycles == 5.0
        # The cache is per-instance state, not class state.
        other = IntervalProfile(warp_id=1)
        other.intervals.append(Interval(n_insts=1, stall_cycles=1.0))
        assert other.n_insts == 1
        assert other.total_stall_cycles == 1.0
