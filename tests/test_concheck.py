"""Tests for the concurrency/fork-safety subsystem (``repro.concheck``).

Four layers:

* the static passes on synthetic packages seeded with each bug class
  (thread-escape, inconsistent guards, lock-order cycles, reentry,
  fork-unsafe pool captures, mutable globals);
* the static passes against the real repository — the CI gate: every
  finding fixed or allowlisted, no stale allowlist entries, and the
  whole analysis under its 2s budget;
* the runtime lock sanitizer (Eraser locksets, order inversions,
  reentry recording, the off-switch contract);
* the concurrency fixes the analyzer motivated: fork-stale exporter /
  sampler handles and the multithreaded metrics + scrape stress test.
"""

import json
import multiprocessing
import os
import textwrap
import threading
import time
import urllib.request

import pytest

from repro.concheck import (
    Allowlist,
    ConDiagnostic,
    LockMonitor,
    TrackedLock,
    analyze_concurrency,
    extract_facts,
    install,
    make_lock,
    site_access,
    uninstall,
)
from repro.depcheck.modindex import ModuleIndex
from repro.obs.exporter import MetricsExporter
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import validate_openmetrics
from repro.obs.sampler import SamplingProfiler
from repro.staticcheck.report import Severity

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ALLOWLIST_PATH = os.path.join(REPO_ROOT, "concheck-allow.txt")


def build_synth(tmp_path, sources):
    """Index a synthetic package written from ``{module: source}``."""
    pkg = tmp_path / "synth"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in sources.items():
        (pkg / (name + ".py")).write_text(textwrap.dedent(source))
    return ModuleIndex.build(root=str(pkg), package="synth")


def findings(tmp_path, sources, check_id=None):
    index = build_synth(tmp_path, sources)
    report = analyze_concurrency(index)
    if check_id is None:
        return report.diagnostics
    return [d for d in report.diagnostics if d.check_id == check_id]


# ---------------------------------------------------------------------------
# Static pass 1: thread-escape analysis
# ---------------------------------------------------------------------------


class TestThreadShared:
    UNLOCKED = {
        "m": """
            import threading

            class Worker:
                def __init__(self):
                    self.items = []

                def start(self):
                    thread = threading.Thread(target=self._run)
                    thread.start()

                def _run(self):
                    self.items.append(1)

                def read(self):
                    return len(self.items)
            """
    }

    def test_unlocked_shared_write_is_an_error(self, tmp_path):
        diags = findings(tmp_path, self.UNLOCKED, "concheck-thread-shared")
        assert len(diags) == 1
        diag = diags[0]
        assert diag.severity is Severity.ERROR
        assert diag.subject == "synth.m.Worker.items"

    def test_locked_shared_write_is_clean(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Worker:
                    def __init__(self):
                        self.lock = threading.Lock()
                        self.items = []

                    def start(self):
                        thread = threading.Thread(target=self._run)
                        thread.start()

                    def _run(self):
                        with self.lock:
                            self.items.append(1)

                    def read(self):
                        with self.lock:
                            return len(self.items)
                """
        }
        assert findings(tmp_path, sources, "concheck-thread-shared") == []

    def test_write_reached_through_call_chain(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Worker:
                    def __init__(self):
                        self.count = 0

                    def start(self):
                        threading.Thread(target=self._run).start()

                    def _run(self):
                        self._bump()

                    def _bump(self):
                        self.count += 1

                    def read(self):
                        return self.count
                """
        }
        diags = findings(tmp_path, sources, "concheck-thread-shared")
        assert [d.subject for d in diags] == ["synth.m.Worker.count"]

    def test_unresolved_thread_target_warns(self, tmp_path):
        sources = {
            "m": """
                import threading

                def launch(callback):
                    threading.Thread(target=callback).start()
                """
        }
        diags = findings(
            tmp_path, sources, "concheck-unresolved-thread-target"
        )
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING

    def test_handler_methods_race_against_themselves(self, tmp_path):
        # A ThreadingHTTPServer runs one handler thread per request, so
        # an unlocked write reached from a handler method races even
        # with no other thread entry point in the codebase.
        sources = {
            "m": """
                from http.server import (
                    BaseHTTPRequestHandler,
                    ThreadingHTTPServer,
                )

                class Counter:
                    def __init__(self):
                        self.hits = 0

                class Handler(BaseHTTPRequestHandler):
                    server: "Srv"

                    def do_GET(self):
                        self.server.counter.hits += 1

                class Srv(ThreadingHTTPServer):
                    counter: "Counter"

                def serve():
                    server = Srv(("127.0.0.1", 0), Handler)
                    server.serve_forever()
                """
        }
        diags = findings(tmp_path, sources, "concheck-thread-shared")
        assert [d.subject for d in diags] == ["synth.m.Counter.hits"]


# ---------------------------------------------------------------------------
# Static pass 2: lock discipline
# ---------------------------------------------------------------------------


class TestLockDiscipline:
    def test_sometimes_guarded_field_warns(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Box:
                    def __init__(self):
                        self.lock = threading.Lock()
                        self.count = 0

                    def locked_add(self):
                        with self.lock:
                            self.count += 1

                    def bare_add(self):
                        self.count += 1
                """
        }
        diags = findings(tmp_path, sources, "concheck-inconsistent-guard")
        assert len(diags) == 1
        assert diags[0].subject == "synth.m.Box.count"
        assert diags[0].severity is Severity.WARNING

    def test_caller_holds_annotation_counts_as_guarded(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Box:
                    def __init__(self):
                        self.lock = threading.Lock()
                        self.count = 0

                    def locked_add(self):
                        with self.lock:
                            self._bump()

                    def _bump(self):
                        '''Add one.

                        concheck: caller-holds Box.lock
                        '''
                        self.count += 1
                """
        }
        assert findings(
            tmp_path, sources, "concheck-inconsistent-guard"
        ) == []

    def test_opposite_acquisition_order_is_a_cycle(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Pair:
                    def __init__(self):
                        self.a = threading.Lock()
                        self.b = threading.Lock()

                    def forward(self):
                        with self.a:
                            with self.b:
                                pass

                    def backward(self):
                        with self.b:
                            with self.a:
                                pass
                """
        }
        diags = findings(tmp_path, sources, "concheck-lock-order-cycle")
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR
        assert diags[0].subject == "synth.m.Pair.a <-> synth.m.Pair.b"

    def test_consistent_order_is_clean(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Pair:
                    def __init__(self):
                        self.a = threading.Lock()
                        self.b = threading.Lock()

                    def one(self):
                        with self.a:
                            with self.b:
                                pass

                    def two(self):
                        with self.a:
                            with self.b:
                                pass
                """
        }
        assert findings(
            tmp_path, sources, "concheck-lock-order-cycle"
        ) == []

    def test_reentry_through_a_callee_is_an_error(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Box:
                    def __init__(self):
                        self.lock = threading.Lock()

                    def outer(self):
                        with self.lock:
                            self.inner()

                    def inner(self):
                        with self.lock:
                            pass
                """
        }
        diags = findings(tmp_path, sources, "concheck-lock-reentry")
        assert len(diags) == 1
        assert "synth.m.Box.lock" in diags[0].subject

    def test_rlock_reentry_is_allowed(self, tmp_path):
        sources = {
            "m": """
                import threading

                class Box:
                    def __init__(self):
                        self.lock = threading.RLock()

                    def outer(self):
                        with self.lock:
                            self.inner()

                    def inner(self):
                        with self.lock:
                            pass
                """
        }
        assert findings(tmp_path, sources, "concheck-lock-reentry") == []


# ---------------------------------------------------------------------------
# Static pass 3: fork/pickle safety at the pool boundary
# ---------------------------------------------------------------------------


class TestForkSafety:
    def test_lock_holder_without_getstate_is_flagged(self, tmp_path):
        sources = {
            "m": """
                import threading
                from concurrent.futures import ProcessPoolExecutor

                class Task:
                    def __init__(self):
                        self.lock = threading.Lock()

                    def run(self):
                        return 1

                def main():
                    task = Task()
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(task.run).result()
                """
        }
        diags = findings(tmp_path, sources, "concheck-fork-unsafe-capture")
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR
        assert "synth.m.Task" in diags[0].subject

    def test_getstate_makes_the_capture_safe(self, tmp_path):
        sources = {
            "m": """
                import threading
                from concurrent.futures import ProcessPoolExecutor

                class Task:
                    def __init__(self):
                        self.lock = threading.Lock()

                    def __getstate__(self):
                        return {}

                    def run(self):
                        return 1

                def main():
                    task = Task()
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(task.run).result()
                """
        }
        assert findings(
            tmp_path, sources, "concheck-fork-unsafe-capture"
        ) == []


# ---------------------------------------------------------------------------
# Static pass 4: global mutable census
# ---------------------------------------------------------------------------


class TestGlobalCensus:
    def test_mutated_global_warns_and_constant_does_not(self, tmp_path):
        sources = {
            "m": """
                CACHE = {}
                LIMITS = (1, 2, 3)

                def remember(key, value):
                    CACHE[key] = value
                """
        }
        index = build_synth(tmp_path, sources)
        report = analyze_concurrency(index)
        flagged = [
            d.subject for d in report.diagnostics
            if d.check_id == "concheck-global-mutable"
        ]
        assert flagged == ["synth.m.CACHE"]
        assert any(e["subject"] == "synth.m.CACHE" for e in report.census)
        assert all(e["subject"] != "synth.m.LIMITS" for e in report.census)

    def test_rebound_none_global_is_in_the_census(self, tmp_path):
        sources = {
            "m": """
                _STATE = None

                def set_state(value):
                    global _STATE
                    _STATE = value
                """
        }
        index = build_synth(tmp_path, sources)
        report = analyze_concurrency(index)
        entries = {e["subject"]: e for e in report.census}
        assert "synth.m._STATE" in entries
        assert entries["synth.m._STATE"]["mutated"]


# ---------------------------------------------------------------------------
# The allowlist
# ---------------------------------------------------------------------------


def _diag(check_id="concheck-global-mutable", subject="pkg.mod.NAME"):
    return ConDiagnostic(
        check_id=check_id, severity=Severity.WARNING,
        subject=subject, message="m",
    )


class TestAllowlist:
    def test_parse_match_and_unused(self):
        allowlist = Allowlist.parse(
            "# comment\n"
            "\n"
            "concheck-global-mutable pkg.mod.* -- registry filled at import\n"
            "concheck-thread-shared other.thing -- never fires\n",
            path="x.txt",
        )
        assert len(allowlist.entries) == 2
        hit = allowlist.match(_diag())
        assert hit is not None
        assert hit.justification == "registry filled at import"
        assert allowlist.match(_diag(subject="elsewhere.NAME")) is None
        assert [e.pattern for e in allowlist.unused()] == ["other.thing"]

    def test_malformed_line_is_rejected(self):
        with pytest.raises(ValueError, match="justification"):
            Allowlist.parse("concheck-global-mutable pkg.mod.NAME\n")

    def test_waived_findings_do_not_fail_but_render(self, tmp_path):
        sources = {
            "m": """
                CACHE = {}

                def remember(key, value):
                    CACHE[key] = value
                """
        }
        index = build_synth(tmp_path, sources)
        allowlist = Allowlist.parse(
            "concheck-global-mutable synth.m.CACHE -- memo table\n"
        )
        report = analyze_concurrency(index, allowlist=allowlist)
        assert report.clean
        assert len(report.waived) == 1
        assert "memo table" in report.render_text()


# ---------------------------------------------------------------------------
# The CI gate: the repository itself is clean
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def repo_report():
    return analyze_concurrency(
        allowlist=Allowlist.load(ALLOWLIST_PATH)
    )


class TestRepositoryGate:
    def test_repo_is_clean_under_the_checked_in_allowlist(self, repo_report):
        assert repo_report.clean, repo_report.render_text()

    def test_no_stale_allowlist_entries(self):
        allowlist = Allowlist.load(ALLOWLIST_PATH)
        analyze_concurrency(allowlist=allowlist)
        assert allowlist.unused() == []

    def test_static_passes_meet_the_time_budget(self, repo_report):
        assert repo_report.elapsed_s < 2.0

    def test_known_obs_locks_are_discovered(self, repo_report):
        for lock in (
            "repro.obs.tracer.Tracer._lock",
            "repro.obs.exporter.MetricsExporter._lock",
            "repro.obs.sampler.SamplingProfiler._lock",
            "repro.obs.metrics.MetricsRegistry._lock",
        ):
            assert lock in repo_report.locks

    def test_seeded_regression_is_caught(self):
        # Re-analyze the real tracer with its span-append lock erased:
        # the analyzer must rediscover the bug the lock fixes.
        facts = extract_facts()
        fn = "repro.obs.tracer._SpanHandle.__exit__"
        fresh = facts.functions[fn].accesses
        facts.functions[fn].accesses = [
            a.__class__(subject=a.subject, kind=a.kind,
                        locks=frozenset(), fn=a.fn, where=a.where)
            for a in fresh
        ]
        report = analyze_concurrency(facts=facts)
        assert any(
            d.check_id == "concheck-thread-shared"
            and d.subject == "repro.obs.tracer.Tracer._spans"
            for d in report.diagnostics
        )

    def test_json_report_shape(self, repo_report):
        payload = json.loads(repo_report.to_json())
        assert payload["clean"] is True
        assert payload["n_errors"] == 0
        assert payload["elapsed_s"] > 0
        assert payload["locks"]


# ---------------------------------------------------------------------------
# The runtime sanitizer
# ---------------------------------------------------------------------------


@pytest.fixture()
def fresh_monitor():
    mon = install(fresh=True)
    try:
        yield mon
    finally:
        uninstall()


def _in_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(5.0)


class TestLockMonitor:
    def test_make_lock_is_plain_when_off(self):
        uninstall()
        lock = make_lock("X")
        assert not isinstance(lock, TrackedLock)
        site_access("X.site")  # must be a silent no-op

    def test_make_lock_is_tracked_when_on(self, fresh_monitor):
        lock = make_lock("X")
        assert isinstance(lock, TrackedLock)
        with lock:
            pass
        assert "X" in fresh_monitor.summary()["locks"]

    def test_opposite_order_acquisition_is_an_inversion(self, fresh_monitor):
        a = make_lock("A")
        b = make_lock("B")
        with a:
            with b:
                pass

        def backward():
            with b:
                with a:
                    pass

        _in_thread(backward)
        inversions = fresh_monitor.summary()["inversions"]
        assert len(inversions) == 1
        assert inversions[0]["locks"] == ["A", "B"]

    def test_reentry_is_recorded_not_deadlocked(self, fresh_monitor):
        lock = make_lock("L")  # non-reentrant by declaration
        with lock:
            with lock:  # a real Lock would deadlock right here
                pass
        reentries = fresh_monitor.summary()["reentries"]
        assert len(reentries) == 1
        assert reentries[0]["lock"] == "L"

    def test_reentrant_lock_reenters_silently(self, fresh_monitor):
        lock = make_lock("R", reentrant=True)
        with lock:
            with lock:
                pass
        assert fresh_monitor.summary()["reentries"] == []

    def test_unlocked_cross_thread_write_is_a_race(self, fresh_monitor):
        site_access("Shared.field")
        _in_thread(lambda: site_access("Shared.field"))
        races = fresh_monitor.summary()["races"]
        assert [r["site"] for r in races] == ["Shared.field"]

    def test_locked_cross_thread_write_is_not_a_race(self, fresh_monitor):
        lock = make_lock("Shared._lock")

        def locked_write():
            with lock:
                site_access("Shared.field")

        locked_write()
        _in_thread(locked_write)
        summary = fresh_monitor.summary()
        assert summary["races"] == []
        site = summary["sites"]["Shared.field"]
        assert site["state"] == "shared-modified"
        assert site["lockset"] == ["Shared._lock"]

    def test_read_only_sharing_is_not_a_race(self, fresh_monitor):
        site_access("Shared.config", write=False)
        _in_thread(lambda: site_access("Shared.config", write=False))
        summary = fresh_monitor.summary()
        assert summary["races"] == []
        assert summary["sites"]["Shared.config"]["state"] == "shared"

    def test_monitor_reset_drops_everything(self):
        mon = LockMonitor()
        mon.note_acquire("A", reentrant=False)
        mon.access("S")
        mon.reset()
        summary = mon.summary()
        assert summary["n_acquires"] == 0
        assert summary["sites"] == {}


# ---------------------------------------------------------------------------
# Fork-stale handles (exporter and sampler)
# ---------------------------------------------------------------------------


class TestForkStaleHandles:
    def test_exporter_drops_simulated_stale_handle(self):
        exporter = MetricsExporter(MetricsRegistry())
        exporter.start()
        try:
            assert exporter.running
            # Quiesce the serve loop, then claim another pid started it
            # — exactly the state a forked child inherits.
            exporter._server.shutdown()
            exporter._thread.join(timeout=5.0)
            exporter._pid += 1
            assert not exporter.running
            exporter.start()  # must drop the stale state and rebind
            assert exporter.running
            assert exporter._pid == os.getpid()
            with urllib.request.urlopen(
                exporter.url + "/healthz", timeout=5
            ) as response:
                assert response.status == 200
        finally:
            exporter.stop()
        assert not exporter.running

    def test_exporter_stop_in_fake_child_does_not_block(self):
        exporter = MetricsExporter(MetricsRegistry())
        exporter.start()
        exporter._server.shutdown()
        exporter._thread.join(timeout=5.0)
        exporter._pid += 1
        started = time.monotonic()
        exporter.stop()  # inherited handle: no join, no server shutdown
        assert time.monotonic() - started < 1.0
        assert exporter._server is None and exporter._thread is None

    def test_sampler_drops_simulated_stale_handle(self):
        sampler = SamplingProfiler(interval=0.005)
        sampler.start()
        try:
            assert sampler.running
            sampler._stop.set()
            sampler._thread.join(timeout=5.0)
            sampler._pid += 1
            assert not sampler.running
            sampler.start()
            assert sampler.running
            assert sampler._pid == os.getpid()
        finally:
            sampler.stop()
        assert not sampler.running

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="fork start method unavailable"
    )
    def test_real_fork_child_sees_dead_exporter_and_recovers(self):
        ctx = multiprocessing.get_context("fork")
        exporter = MetricsExporter(MetricsRegistry())

        def child():
            code = 1
            try:
                if exporter.running:
                    code = 2  # inherited handle wrongly claims to serve
                else:
                    exporter.stop()  # must return, not join a ghost
                    exporter.start()  # fresh server on a fresh port
                    code = 0 if exporter.running else 3
            finally:
                os._exit(code)

        with exporter:
            parent_url = exporter.url
            process = ctx.Process(target=child)
            process.start()
            process.join(timeout=30)
            assert process.exitcode == 0
            # The parent's server survived the child's lifecycle.
            with urllib.request.urlopen(
                parent_url + "/healthz", timeout=5
            ) as response:
                assert response.status == 200


# ---------------------------------------------------------------------------
# Multithreaded metrics + scrape stress (satellite of the analyzer work)
# ---------------------------------------------------------------------------


class TestMetricsStress:
    N_THREADS = 8
    N_ITER = 300

    def test_hammered_registry_serves_valid_scrapes(self):
        registry = MetricsRegistry()
        exporter = MetricsExporter(registry)
        errors = []
        stop_scraping = threading.Event()

        def hammer(worker_id):
            for i in range(self.N_ITER):
                registry.counter("stress_total").inc()
                registry.counter(
                    "stress_labeled_total", worker=str(worker_id)
                ).inc(2)
                registry.gauge("stress_gauge").set(i)
                registry.histogram("stress_ms").observe(i % 50)

        def scrape(url):
            while not stop_scraping.is_set():
                try:
                    with urllib.request.urlopen(
                        url + "/metrics", timeout=5
                    ) as response:
                        text = response.read().decode("utf-8")
                except OSError as exc:  # pragma: no cover - fail loudly
                    errors.append("scrape failed: %r" % (exc,))
                    return
                bad = validate_openmetrics(text)
                if bad:
                    errors.append("invalid exposition: %s" % bad)
                    return

        with exporter:
            scraper = threading.Thread(
                target=scrape, args=(exporter.url,), daemon=True
            )
            scraper.start()
            workers = [
                threading.Thread(target=hammer, args=(worker_id,))
                for worker_id in range(self.N_THREADS)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60)
            stop_scraping.set()
            scraper.join(timeout=10)

        assert errors == []
        expected = self.N_THREADS * self.N_ITER
        assert registry.counter_value("stress_total") == expected
        for worker_id in range(self.N_THREADS):
            assert registry.counter_value(
                "stress_labeled_total", worker=str(worker_id)
            ) == 2 * self.N_ITER
        histogram = registry.histogram("stress_ms")
        assert histogram.count == expected
        assert sum(histogram.counts) == expected
        assert exporter.n_scrapes >= 1

    def test_hammered_registry_under_sanitizer_reports_no_races(self):
        mon = install(fresh=True)
        try:
            registry = MetricsRegistry()

            def hammer():
                for i in range(100):
                    registry.counter("sanitized_total").inc()
                    registry.histogram("sanitized_ms").observe(i)

            workers = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=30)
            registry.snapshot()
            summary = mon.summary()
            assert summary["races"] == []
            assert summary["inversions"] == []
            assert summary["reentries"] == []
            assert summary["n_acquires"] > 0
        finally:
            uninstall()
