"""Tests for the SFU-contention extension (the paper's Sec. IV-B1
'generalisation to other contended components', left as future work)."""

import pytest

from repro.config import ConfigError, GPUConfig
from repro.core.contention import model_contention
from repro.core.cpi_stack import StallType
from repro.core.interval import Interval, IntervalProfile
from repro.core.model import GPUMech
from repro.isa import KernelBuilder
from repro.timing import TimingSimulator
from repro.trace import emulate


def sfu_kernel(n_sfu_insts=8, n_threads=256, block_size=64):
    """Independent SFU instructions: throughput-, not latency-, bound."""
    b = KernelBuilder("sfuheavy")
    for i in range(n_sfu_insts):
        b.fsqrt(1.0 + i)
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


class TestConfig:
    def test_default_is_balanced(self):
        config = GPUConfig()
        assert config.n_sfu_units == config.warp_size
        assert config.sfu_service_cycles == 1.0

    def test_service_cycles(self):
        config = GPUConfig().with_(n_sfu_units=4)
        assert config.sfu_service_cycles == 8.0

    @pytest.mark.parametrize("bad", [0, 33, -1])
    def test_bounds_validated(self, bad):
        with pytest.raises(ConfigError):
            GPUConfig(n_sfu_units=bad)


class TestOracle:
    def base_config(self, n_sfu):
        return GPUConfig.small(n_cores=1, warps_per_core=8).with_(
            n_sfu_units=n_sfu
        )

    def test_balanced_design_unaffected(self):
        kernel = sfu_kernel()
        balanced = self.base_config(32)
        stats = TimingSimulator(balanced).run(emulate(kernel, balanced))
        assert all(c.sfu_stall_cycles == 0 for c in stats.cores)

    def test_narrow_sfu_slows_sfu_kernel(self):
        kernel = sfu_kernel()
        wide = self.base_config(32)
        narrow = self.base_config(4)
        fast = TimingSimulator(wide).run(emulate(kernel, wide))
        slow = TimingSimulator(narrow).run(emulate(kernel, narrow))
        assert slow.total_cycles > fast.total_cycles
        assert any(c.sfu_stall_cycles > 0 for c in slow.cores)

    def test_occupancy_throughput_exact(self):
        """8 warps x 8 independent SFU insts on a 4-lane SFU: each issue
        occupies the unit 8 cycles -> ~64 * 8 cycles total."""
        kernel = sfu_kernel(n_sfu_insts=8, n_threads=256, block_size=256)
        narrow = self.base_config(4)
        stats = TimingSimulator(narrow).run(emulate(kernel, narrow))
        sfu_issues = 8 * 8
        # Total dominated by SFU occupancy; exits tack on a few cycles.
        assert stats.total_cycles >= sfu_issues * 8 - 8
        assert stats.total_cycles <= sfu_issues * 8 + 3 * 8

    def test_non_sfu_work_fills_occupancy_gaps(self):
        """IALU work from other warps issues while the SFU pipe is busy."""
        b = KernelBuilder("mixed")
        for i in range(4):
            b.fsqrt(1.0 + i)
        for i in range(16):
            b.iadd(i, 1)
        b.exit()
        kernel = b.build(n_threads=256, block_size=256)
        narrow = self.base_config(4)
        stats = TimingSimulator(narrow).run(emulate(kernel, narrow))
        # SFU occupancy alone is 8 warps * 4 sfu * 8 = 256 cycles; full
        # serialisation of everything would be 256 + 136 = 392.  Some of
        # the 128 IALU + 8 exits must hide inside the occupancy windows.
        sfu_occupancy = 8 * 4 * 8
        full_serial = sfu_occupancy + 8 * (16 + 1)
        assert sfu_occupancy <= stats.total_cycles < full_serial

    def test_cycle_skipping_equivalence_with_sfu(self):
        kernel = sfu_kernel()
        narrow = self.base_config(4)
        trace = emulate(kernel, narrow)
        fast = TimingSimulator(narrow, cycle_skipping=True).run(trace)
        slow = TimingSimulator(narrow, cycle_skipping=False).run(trace)
        assert fast.total_cycles == slow.total_cycles


class TestModel:
    def profile_with_sfu(self, n_sfu, n_insts=20):
        profile = IntervalProfile(warp_id=0)
        profile.intervals.append(
            Interval(n_insts=n_insts, stall_cycles=10.0, n_sfu=n_sfu)
        )
        return profile

    def test_balanced_design_no_charge(self):
        result = model_contention(
            self.profile_with_sfu(10), 8, GPUConfig(), 420.0
        )
        assert result.cpi_sfu_floor == 0.0

    def test_floor_is_occupancy_throughput(self):
        config = GPUConfig().with_(n_sfu_units=4)  # service = 8 cycles
        result = model_contention(
            self.profile_with_sfu(n_sfu=10, n_insts=20), 8, config, 420.0
        )
        assert result.cpi_sfu_floor == pytest.approx(8.0 * 10 / 20)

    def test_prediction_tracks_oracle_direction(self):
        kernel = sfu_kernel(n_sfu_insts=12, n_threads=512, block_size=64)
        wide = GPUConfig.small(n_cores=1, warps_per_core=8)
        narrow = wide.with_(n_sfu_units=4)
        wide_pred = GPUMech(wide).predict_kernel(kernel)
        narrow_pred = GPUMech(narrow).predict_kernel(kernel)
        assert narrow_pred.cpi > wide_pred.cpi
        assert narrow_pred.cpi_sfu > 0.0
        assert wide_pred.cpi_sfu == 0.0
        assert narrow_pred.cpi_stack[StallType.SFU] == pytest.approx(
            narrow_pred.cpi_sfu
        )

    def test_model_matches_oracle_on_sfu_bound_kernel(self):
        kernel = sfu_kernel(n_sfu_insts=12, n_threads=512, block_size=64)
        narrow = GPUConfig.small(n_cores=1, warps_per_core=8).with_(
            n_sfu_units=4
        )
        trace = emulate(kernel, narrow)
        oracle = TimingSimulator(narrow).run(trace)
        prediction = GPUMech(narrow).predict_kernel(kernel)
        error = abs(prediction.cpi - oracle.cpi) / oracle.cpi
        assert error < 0.25
