"""Cross-cutting property tests: random programs through the whole stack.

A hypothesis strategy generates arbitrary (but well-formed) kernels in the
mini ISA; the invariants below must hold for *every* such kernel:

* the emulator records one trace row per issued instruction, dependencies
  point backwards, coalesced request counts are bounded by the warp size;
* the interval profile partitions the trace and reproduces the Eq. 4
  issue-cycle total;
* the timing oracle issues exactly the traced instructions, never beats
  the issue-bandwidth bound, and is invariant to cycle skipping;
* GPUMech's prediction is positive, finite, and the CPI stack sums to it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.core.interval import build_interval_profile
from repro.core.latency import build_latency_table
from repro.core.model import GPUMech
from repro.isa import KernelBuilder
from repro.memory import simulate_caches
from repro.timing import TimingSimulator
from repro.trace import emulate
from repro.trace.trace_types import NO_DEP

CONFIG = GPUConfig.small(n_cores=2, warps_per_core=4)


@st.composite
def random_kernels(draw):
    """A random straight-line-plus-one-loop kernel."""
    b = KernelBuilder("prop")
    tid = b.tid()
    values = [tid, b.mov(1.5)]
    n_ops = draw(st.integers(1, 12))
    for i in range(n_ops):
        kind = draw(st.sampled_from(["alu", "falu", "sfu", "ld", "st"]))
        operand = values[draw(st.integers(0, len(values) - 1))]
        if kind == "alu":
            values.append(b.iadd(operand, draw(st.integers(0, 100))))
        elif kind == "falu":
            values.append(b.ffma(operand, 1.25, 0.5))
        elif kind == "sfu":
            values.append(b.fsqrt(operand))
        elif kind == "ld":
            stride = draw(st.sampled_from([4, 64, 512]))
            addr = b.iadd(b.imul(tid, stride), (i + 1) << 22)
            values.append(b.ld(addr))
        else:
            stride = draw(st.sampled_from([4, 512]))
            addr = b.iadd(b.imul(tid, stride), (i + 17) << 22)
            b.st(addr, operand)
    if draw(st.booleans()):  # optional divergent if-block
        pred = b.setp_lt(b.lane(), draw(st.integers(1, 31)))
        with b.if_(pred):
            b.fadd(values[-1] if values else 1.0, 2.0)
    if draw(st.booleans()):  # optional uniform short loop
        counter = b.mov(0)
        head = b.loop_begin()
        b.iadd(counter, 1, dst=counter)
        pred = b.setp_lt(counter, draw(st.integers(1, 3)))
        b.loop_end(head, pred)
    b.exit()
    n_warps = draw(st.integers(1, 4))
    return b.build(n_threads=n_warps * 64, block_size=64)


@settings(deadline=None, max_examples=25)
@given(random_kernels())
def test_trace_invariants(kernel):
    trace = emulate(kernel, CONFIG)
    assert trace.n_warps == kernel.n_warps
    for warp in trace.warps:
        n = len(warp)
        assert n > 0
        # Dependencies always point strictly backwards.
        for k in range(n):
            for dep in warp.deps[k]:
                assert dep == NO_DEP or 0 <= dep < k
        # Coalescing is bounded by the warp size and only on memory ops.
        reqs = warp.requests_per_inst
        assert (reqs <= CONFIG.warp_size).all()
        assert (reqs[~warp.is_memory] == 0).all()
        # Active counts are within [1, warp_size].
        assert (np.asarray(warp.active) >= 1).all()
        assert (np.asarray(warp.active) <= CONFIG.warp_size).all()


@settings(deadline=None, max_examples=25)
@given(random_kernels())
def test_interval_profile_invariants(kernel):
    trace = emulate(kernel, CONFIG)
    cache = simulate_caches(trace, CONFIG)
    table = build_latency_table(trace, cache, CONFIG)
    for warp in trace.warps:
        profile = build_interval_profile(warp, table)
        # Partition: interval instruction counts sum to the trace length.
        assert sum(i.n_insts for i in profile.intervals) == len(warp)
        # Non-negative stalls; all-but-last interval stalls are positive.
        for interval in profile.intervals[:-1]:
            assert interval.stall_cycles > 0.0
        assert profile.intervals[-1].stall_cycles == 0.0
        # Eq. 5 consistency.
        assert profile.total_cycles >= len(warp) / profile.issue_rate
        assert 0.0 < profile.warp_perf <= profile.issue_rate


@settings(deadline=None, max_examples=15)
@given(random_kernels())
def test_oracle_invariants(kernel):
    trace = emulate(kernel, CONFIG)
    stats = TimingSimulator(CONFIG).run(trace)
    assert stats.total_insts == trace.total_insts
    # Issue bandwidth bound: cycles >= insts / (cores * issue width).
    assert stats.total_cycles >= trace.total_insts / (
        stats.n_cores_used * CONFIG.issue_width
    )
    assert stats.cpi >= 1.0


@settings(deadline=None, max_examples=8)
@given(random_kernels())
def test_oracle_cycle_skipping_equivalence(kernel):
    trace = emulate(kernel, CONFIG)
    fast = TimingSimulator(CONFIG, cycle_skipping=True).run(trace)
    slow = TimingSimulator(CONFIG, cycle_skipping=False).run(trace)
    assert fast.total_cycles == slow.total_cycles


@settings(deadline=None, max_examples=15)
@given(random_kernels(), st.sampled_from(["rr", "gto"]))
def test_model_invariants(kernel, policy):
    model = GPUMech(CONFIG)
    inputs = model.prepare(kernel)
    prediction = model.predict(inputs, policy=policy)
    assert np.isfinite(prediction.cpi)
    assert prediction.cpi >= 1.0  # issue-bandwidth floor
    assert prediction.cpi_mshr >= 0.0 and prediction.cpi_queue >= 0.0
    assert prediction.cpi_stack.total == pytest.approx(prediction.cpi)
    # Monotone model ladder.
    assert prediction.cpi >= prediction.cpi_multithreading - 1e-12
