"""Tests for the staged artifact pipeline (fingerprints, invalidation,
parallel equivalence, on-disk reuse)."""

import math

import pytest

from repro.config import ALL_FIELDS, HARDWARE_FIELDS, TRACE_FIELDS, GPUConfig
from repro.harness import experiments as ex
from repro.harness.runner import KernelResult, Runner, nanmean
from repro.pipeline import (
    DiskStore,
    EvalRequest,
    MemoryStore,
    Pipeline,
    STAGES,
    TieredStore,
    open_store,
)
from repro.workloads import Scale


@pytest.fixture
def config():
    return GPUConfig.small(n_cores=2, warps_per_core=8)


@pytest.fixture
def pipeline(config):
    return Pipeline(config, scale=Scale.tiny())


class TestFingerprint:
    def test_field_split_covers_config(self):
        assert TRACE_FIELDS | HARDWARE_FIELDS == ALL_FIELDS
        assert not TRACE_FIELDS & HARDWARE_FIELDS

    def test_stable_across_with_round_trip(self, config):
        round_trip = config.with_(n_mshrs=64).with_(n_mshrs=config.n_mshrs)
        assert round_trip.fingerprint() == config.fingerprint()
        assert round_trip == config

    def test_changes_when_a_field_changes(self, config):
        assert config.with_(n_mshrs=64).fingerprint() != config.fingerprint()

    def test_subset_fingerprint_ignores_other_fields(self, config):
        hw_override = config.with_(n_mshrs=64, dram_bandwidth_gbps=96.0)
        assert hw_override.trace_fingerprint() == config.trace_fingerprint()
        assert hw_override.hardware_fingerprint() != config.hardware_fingerprint()

    def test_op_latency_dict_order_is_canonicalised(self, config):
        reordered = config.with_(
            op_latencies={"sfu": 40, "falu": 25, "ialu": 4}
        )
        assert reordered.fingerprint() == config.fingerprint()

    def test_two_instances_agree(self, config):
        assert GPUConfig.small(n_cores=2, warps_per_core=8).fingerprint() == (
            config.fingerprint()
        )


class TestStageDag:
    def test_stage_config_fields_are_real_fields(self):
        for spec in STAGES.values():
            assert spec.config_fields <= ALL_FIELDS, spec.name

    def test_stage_inputs_are_stages(self):
        for spec in STAGES.values():
            for upstream in spec.inputs:
                assert upstream in STAGES


class TestInvalidation:
    def test_hardware_override_does_not_re_emulate(self, pipeline):
        pipeline.evaluate("vectoradd")
        assert pipeline.counters["trace"] == 1
        # MSHR count touches neither the trace nor the functional cache
        # replay: only the oracle and the analytical model re-run.
        pipeline.evaluate(
            "vectoradd", config=pipeline.config.with_(n_mshrs=64)
        )
        assert pipeline.counters["trace"] == 1
        assert pipeline.counters["cache_sim"] == 1
        assert pipeline.counters["interval_profiles"] == 1
        assert pipeline.counters["oracle"] == 2
        assert pipeline.counters["predict"] == 2

    def test_cache_geometry_override_re_runs_cache_sim(self, pipeline):
        pipeline.evaluate("vectoradd")
        pipeline.evaluate(
            "vectoradd", config=pipeline.config.with_(l1_size=64 * 1024)
        )
        assert pipeline.counters["trace"] == 1
        assert pipeline.counters["cache_sim"] == 2

    def test_repeated_sweep_runs_nothing(self, config):
        runner = Runner(config, Scale.tiny())
        kernels = ("vectoradd", "strided_deg8")
        ex.run_figure13(runner, kernels=kernels, warp_counts=(4, 8))
        first = dict(runner.pipeline.counters)
        ex.run_figure13(runner, kernels=kernels, warp_counts=(4, 8))
        assert dict(runner.pipeline.counters) == first

    def test_scale_is_part_of_the_trace_key(self, config):
        store = MemoryStore()
        tiny = Pipeline(config, scale=Scale.tiny(), store=store)
        small = Pipeline(config, scale=Scale.small(), store=store)
        a = tiny.trace("vectoradd")
        b = small.trace("vectoradd")
        assert small.counters["trace"] == 1  # no stale cross-scale hit
        assert a.n_warps != b.n_warps


class TestParallel:
    def test_parallel_matches_serial_bitwise(self, config):
        kernels = ("vectoradd", "strided_deg8")
        serial = ex.run_figure13(
            Runner(config, Scale.tiny()),
            kernels=kernels, warp_counts=(4, 8),
        )
        parallel = ex.run_figure13(
            Runner(config, Scale.tiny(), jobs=2),
            kernels=kernels, warp_counts=(4, 8),
        )
        assert parallel.text == serial.text
        assert parallel.data["series"] == serial.data["series"]

    def test_evaluate_many_preserves_request_order(self, config):
        requests = [
            EvalRequest(kernel="strided_deg8", warps_per_core=4),
            EvalRequest(kernel="vectoradd", warps_per_core=8),
            EvalRequest(kernel="vectoradd", warps_per_core=4),
        ]
        results = Runner(config, Scale.tiny(), jobs=2).evaluate_many(requests)
        assert [(r.kernel, r.n_warps <= 8) for r in results] == [
            ("strided_deg8", True),
            ("vectoradd", True),
            ("vectoradd", True),
        ]


class TestDiskStore:
    def test_reuse_across_pipeline_instances(self, config, tmp_path):
        first = Pipeline(config, scale=Scale.tiny(), cache_dir=str(tmp_path))
        first.evaluate("vectoradd")
        assert first.counters["trace"] == 1
        second = Pipeline(config, scale=Scale.tiny(), cache_dir=str(tmp_path))
        result = second.evaluate("vectoradd")
        assert result.oracle_cpi > 0
        assert dict(second.counters) == {}  # everything came off disk

    def test_disk_artifacts_match_fresh_compute(self, config, tmp_path):
        warm = Pipeline(config, scale=Scale.tiny(), cache_dir=str(tmp_path))
        fresh = Pipeline(config, scale=Scale.tiny())
        a = warm.evaluate("strided_deg8")
        b = Pipeline(
            config, scale=Scale.tiny(), cache_dir=str(tmp_path)
        ).evaluate("strided_deg8")
        c = fresh.evaluate("strided_deg8")
        assert a.model_cpis == b.model_cpis == c.model_cpis
        assert a.oracle_cpi == b.oracle_cpi == c.oracle_cpi

    def test_corrupt_artifact_is_a_miss(self, config, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("trace:deadbeef", {"x": 1})
        path = store._path("trace:deadbeef")
        # Different garbage bytes make pickle raise different exception
        # types (UnpicklingError, ValueError via the GET opcode, ...);
        # every one of them must read as a miss.
        for garbage in (b"not a pickle", b"garbage\n", b""):
            with open(path, "wb") as handle:
                handle.write(garbage)
            assert store.get("trace:deadbeef") is None

    def test_tiered_store_backfills_memory(self, tmp_path):
        memory = MemoryStore()
        disk = DiskStore(str(tmp_path))
        disk.put("oracle:cafe", [1, 2, 3])
        tiered = TieredStore([memory, disk])
        assert tiered.get("oracle:cafe") == [1, 2, 3]
        assert memory.get("oracle:cafe") == [1, 2, 3]

    def test_open_store_defaults_to_memory(self):
        assert isinstance(open_store(), MemoryStore)
        assert "open" not in repr(open_store())  # smoke: constructible


class TestGPUMechThroughPipeline:
    def test_prepare_is_cached_per_model(self, config):
        from repro.core.model import GPUMech
        from repro.workloads import get_kernel

        kernel, memory = get_kernel("vectoradd", Scale.tiny())
        model = GPUMech(config)
        first = model.prepare(kernel, memory=memory)
        trace = first.trace
        second = model.prepare(trace=trace)
        # Same content → same artifacts, no recomputation.
        assert model.pipeline.counters["cache_sim"] == 1
        assert second.cache_result is first.cache_result

    def test_shared_pipeline_shares_store(self, config):
        from repro.core.model import GPUMech

        pipeline = Pipeline(config, scale=Scale.tiny())
        model_a = GPUMech(config, pipeline=pipeline)
        model_b = GPUMech(config, pipeline=pipeline)
        trace = pipeline.trace("vectoradd")
        model_a.prepare(trace=trace)
        model_b.prepare(trace=trace)
        assert pipeline.counters["cache_sim"] == 1


class TestNanErrors:
    def _degenerate(self):
        return KernelResult(
            kernel="k", policy="rr", n_warps=8,
            oracle_cpi=0.0,
            model_cpis={m: 1.0 for m in ("naive", "mt_mshr_band")},
            oracle=None, prediction=None,
        )

    def test_degenerate_oracle_reports_nan_not_zero(self):
        result = self._degenerate()
        assert math.isnan(result.error("mt_mshr_band"))

    def test_nanmean_skips_nans(self):
        assert nanmean([0.1, float("nan"), 0.3]) == pytest.approx(0.2)
        assert math.isnan(nanmean([float("nan")]))
        assert math.isnan(nanmean([]))

    def test_validation_excludes_degenerate_results(self, config):
        from repro.harness.validation import validate_model

        good = Runner(config, Scale.tiny()).evaluate("vectoradd")
        validation = validate_model([good, self._degenerate()], "mt_mshr_band")
        assert validation.n == 1
        assert not math.isnan(validation.mean_error)


class TestLintStage:
    def _broken_spec(self):
        from repro.isa import Imm, Instruction, Kernel, Reg
        from repro.workloads.suite import KernelSpec

        program = (
            Instruction("iadd", dst=Reg(1), srcs=(Reg(0), Imm(1))),
            Instruction("st", srcs=(Imm(0), Reg(1))),
            Instruction("exit"),
        )
        kernel = Kernel("broken", program, n_threads=32, block_size=32)
        return KernelSpec(
            name="broken", suite="test", tags=frozenset(),
            description="uninitialized read",
            _factory=lambda scale: (kernel, None),
        )

    def test_lint_runs_before_trace_and_is_cached(self, config):
        pipeline = Pipeline(config, scale=Scale.tiny(), lint=True)
        pipeline.trace("vectoradd")
        assert pipeline.counters["lint"] == 1
        assert pipeline.counters["trace"] == 1
        assert pipeline.timings["lint"] > 0
        pipeline.trace("vectoradd")
        assert pipeline.counters["lint"] == 1  # second call is a store hit
        assert pipeline.hits["lint"] == 1

    def test_lint_off_by_default(self, pipeline):
        pipeline.trace("vectoradd")
        assert pipeline.counters["lint"] == 0

    def test_lint_error_blocks_the_trace(self, config, monkeypatch):
        from repro.staticcheck import StaticCheckError
        from repro.workloads.suite import SUITE

        monkeypatch.setitem(SUITE, "broken", self._broken_spec())
        pipeline = Pipeline(config, scale=Scale.tiny(), lint=True)
        with pytest.raises(StaticCheckError) as excinfo:
            pipeline.trace("broken")
        assert excinfo.value.report.by_check("uninit-read")
        # No trace artifact was built (or cached) for the bad kernel.
        assert pipeline.counters["trace"] == 0

    def test_verify_returns_the_report(self, config):
        pipeline = Pipeline(config, scale=Scale.tiny())
        report = pipeline.verify("vectoradd")
        assert report.kernel == "vectoradd"
        assert not report.has_errors
