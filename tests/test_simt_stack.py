"""Unit tests for the SIMT reconvergence stack."""

import numpy as np
import pytest

from repro.trace.simt_stack import SimtStack, SimtStackError


def full_mask(n=32):
    return np.ones(n, dtype=bool)


def mask_of(indices, n=32):
    mask = np.zeros(n, dtype=bool)
    mask[list(indices)] = True
    return mask


class TestBasics:
    def test_initial_state(self):
        stack = SimtStack(full_mask())
        assert stack.depth == 1
        assert stack.top.pc == 0
        assert stack.top.n_active == 32

    def test_empty_mask_rejected(self):
        with pytest.raises(SimtStackError):
            SimtStack(np.zeros(32, dtype=bool))

    def test_advance_and_jump(self):
        stack = SimtStack(full_mask())
        stack.advance()
        assert stack.top.pc == 1
        stack.jump(10)
        assert stack.top.pc == 10


class TestBranching:
    def test_uniform_taken(self):
        stack = SimtStack(full_mask())
        stack.branch(full_mask(), target=5, reconv=9)
        assert stack.depth == 1
        assert stack.top.pc == 5

    def test_uniform_not_taken(self):
        stack = SimtStack(full_mask())
        stack.branch(np.zeros(32, dtype=bool), target=5, reconv=9)
        assert stack.depth == 1
        assert stack.top.pc == 1

    def test_divergent_split(self):
        stack = SimtStack(full_mask())
        taken = mask_of(range(8))
        stack.branch(taken, target=5, reconv=9)
        assert stack.depth == 3
        # Fall-through group executes first.
        assert stack.top.pc == 1
        assert stack.top.n_active == 24
        # Join entry holds the full mask at the reconvergence point.
        assert stack._entries[0].pc == 9
        assert stack._entries[0].n_active == 32

    def test_divergence_without_reconv_rejected(self):
        stack = SimtStack(full_mask())
        with pytest.raises(SimtStackError):
            stack.branch(mask_of([0]), target=5, reconv=None)

    def test_full_reconvergence_cycle(self):
        stack = SimtStack(full_mask())
        stack.branch(mask_of(range(8)), target=5, reconv=9)
        # Execute the fall-through side up to the reconvergence point.
        while stack.top.pc != 9:
            stack.advance()
        assert stack.pop_reconverged()
        # Taken side starts at 5.
        assert stack.top.pc == 5
        assert stack.top.n_active == 8
        while stack.top.pc != 9:
            stack.advance()
        assert stack.pop_reconverged()
        # Join entry with everyone back.
        assert stack.depth == 1
        assert stack.top.n_active == 32
        assert stack.top.pc == 9

    def test_nested_divergence(self):
        stack = SimtStack(full_mask())
        stack.branch(mask_of(range(16)), target=10, reconv=20)
        # Fall-through group diverges again.
        inner_taken = mask_of(range(16, 20))
        stack.branch(inner_taken, target=5, reconv=8)
        assert stack.depth == 5
        # The inner split only involves lanes of the outer fall-through.
        assert stack.top.n_active == 12

    def test_branch_masks_are_anded_with_top(self):
        stack = SimtStack(mask_of(range(4)))
        stack.branch(full_mask(), target=7, reconv=9)
        # All active lanes take -> uniform taken.
        assert stack.depth == 1
        assert stack.top.pc == 7

    def test_cannot_pop_top_level(self):
        stack = SimtStack(full_mask())
        assert not stack.pop_reconverged()  # reconv is None
