"""Golden equivalence of the scalar and vectorized hot-path backends.

The vectorized emulator / interval builder / cache replay are only
admissible because they are *bitwise* interchangeable with the scalar
reference loops: same trace columns, same interval profiles, same
cache-sim counters, same CPI stacks — and therefore the same
content-addressed store fingerprints.  This module pins that contract
over the entire workload suite; pickle-bytes equality is the strongest
practical form (the artifact store pickles artifacts wholesale, so
pickle equality *is* store-fingerprint equality).
"""

import os
import pickle
from contextlib import contextmanager

import numpy as np
import pytest

from repro.backend import SCALAR, SCALAR_ENV, VECTORIZED, current_backend
from repro.config import GPUConfig
from repro.core.interval import build_interval_profiles
from repro.core.latency import build_latency_table
from repro.memory.cache_simulator import simulate_caches
from repro.pipeline import Pipeline
from repro.pipeline.stages import trace_digest
from repro.trace.emulator import emulate
from repro.workloads.generators import Scale
from repro.workloads.suite import SUITE, kernel_names

CONFIG = GPUConfig.small(n_cores=2, warps_per_core=8)

#: Trace columns that must match bitwise, dtype and shape included.
COLUMNS = (
    "pcs", "ops", "deps", "active", "req_offsets", "req_lines", "conflict",
)


@contextmanager
def backend(scalar):
    """Force the scalar (or vectorized) backend within the block."""
    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if scalar else "0"
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved


def _artifacts(name, scalar):
    """trace → cache sim → latency table → profiles under one backend."""
    kernel, memory = SUITE[name].build(Scale.tiny())
    with backend(scalar):
        assert current_backend() == (SCALAR if scalar else VECTORIZED)
        trace = emulate(kernel, CONFIG, memory=memory)
        cache = simulate_caches(trace, CONFIG)
        table = build_latency_table(trace, cache, CONFIG)
        profiles = build_interval_profiles(
            trace.warps, table, CONFIG.issue_rate
        )
    return trace, cache, profiles


class TestSuiteEquivalence:
    @pytest.mark.parametrize("name", kernel_names())
    def test_artifacts_bitwise_identical(self, name):
        strace, scache, sprofiles = _artifacts(name, scalar=True)
        vtrace, vcache, vprofiles = _artifacts(name, scalar=False)

        # Trace columns: bitwise values, exact dtypes, exact shapes.
        assert len(vtrace.warps) == len(strace.warps)
        for sw, vw in zip(strace.warps, vtrace.warps):
            assert vw.warp_id == sw.warp_id
            assert vw.block_id == sw.block_id
            for column in COLUMNS:
                a, b = getattr(sw, column), getattr(vw, column)
                assert b.dtype == a.dtype, (name, column)
                assert b.shape == a.shape, (name, column)
                assert np.array_equal(b, a), (name, column)
        # Same content hash → same store fingerprints downstream.
        assert trace_digest(vtrace) == trace_digest(strace)

        # Cache-sim counters and interval profiles: pickle equality is
        # store-fingerprint equality (the store pickles wholesale).
        assert pickle.dumps(vcache) == pickle.dumps(scache)
        assert pickle.dumps(vprofiles) == pickle.dumps(sprofiles)


class TestCpiStackEquivalence:
    @pytest.mark.parametrize("name", kernel_names())
    def test_predictions_identical(self, name):
        stacks = {}
        for scalar in (True, False):
            with backend(scalar):
                pipeline = Pipeline(CONFIG, scale=Scale.tiny())
                stacks[scalar] = pipeline.predict(name)
        assert pickle.dumps(stacks[False]) == pickle.dumps(stacks[True])


class TestBackendSelection:
    def test_env_selects_scalar(self):
        with backend(True):
            assert current_backend() == SCALAR
        with backend(False):
            assert current_backend() == VECTORIZED

    def test_empty_and_zero_mean_false(self, monkeypatch):
        for value in ("", "0", "false", "no"):
            monkeypatch.setenv(SCALAR_ENV, value)
            assert current_backend() == VECTORIZED
        monkeypatch.delenv(SCALAR_ENV)
        assert current_backend() == VECTORIZED
