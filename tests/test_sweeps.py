"""Tests for the general design-space sweep API."""

import pytest

from repro.config import GPUConfig
from repro.harness.runner import Runner
from repro.harness.sweeps import Sweep, SweepError
from repro.workloads import Scale


@pytest.fixture(scope="module")
def runner():
    return Runner(GPUConfig.small(n_cores=2, warps_per_core=8), Scale.tiny())


class TestSweepSpec:
    def test_unknown_parameter(self):
        with pytest.raises(SweepError):
            Sweep("clock_speed", [1, 2])

    def test_empty_values(self):
        with pytest.raises(SweepError):
            Sweep("n_mshrs", [])

    def test_config_fields_accepted(self):
        Sweep("n_mshrs", [32])
        Sweep("dram_bandwidth_gbps", [96.0])
        Sweep("scheduler", ["rr", "gto"])
        Sweep("warps_per_core", [4, 8])


class TestSweepRun:
    def test_mshr_sweep(self, runner):
        result = Sweep("n_mshrs", [32, 256]).run(runner, ["strided_deg32"])
        assert result.values == [32, 256]
        oracle_cpis = [
            p.results["strided_deg32"].oracle_cpi for p in result.points
        ]
        # More MSHRs never slow the divergent kernel down.
        assert oracle_cpis[1] <= oracle_cpis[0]

    def test_warps_sweep_uses_residency_override(self, runner):
        result = Sweep("warps_per_core", [2, 4]).run(runner, ["mandelbrot"])
        n_warps = [p.results["mandelbrot"].n_warps for p in result.points]
        assert n_warps == [2, 4]

    def test_scheduler_sweep(self, runner):
        result = Sweep("scheduler", ["rr", "gto"]).run(runner, ["vectoradd"])
        policies = [p.results["vectoradd"].policy for p in result.points]
        assert policies == ["rr", "gto"]

    def test_point_aggregates(self, runner):
        result = Sweep("n_mshrs", [32]).run(
            runner, ["vectoradd", "strided_deg8"]
        )
        point = result.points[0]
        assert point.mean_error() >= 0.0
        assert point.mean_cpi(None) > 0.0  # oracle mean
        assert point.mean_cpi("naive") > 0.0

    def test_best_value_and_agreement(self, runner):
        result = Sweep("warps_per_core", [2, 4]).run(runner, ["mandelbrot"])
        # More warps hide mandelbrot's dependence stalls: 4 wins for both.
        assert result.best_value("mandelbrot", "oracle") == 4
        assert result.model_picks_oracle_best("mandelbrot")

    def test_render(self, runner):
        result = Sweep("n_mshrs", [32, 64]).run(runner, ["strided_deg8"])
        text = result.render()
        assert "n_mshrs" in text and "strided_deg8" in text
