"""Unit tests for the machine configuration (Table I)."""

import pytest

from repro.config import ConfigError, GPUConfig


class TestDefaults:
    def test_paper_baseline_matches_table1(self):
        cfg = GPUConfig.paper_baseline()
        assert cfg.n_cores == 16
        assert cfg.warp_size == 32
        assert cfg.max_warps_per_core == 32
        assert cfg.issue_width == 1
        assert cfg.l1_size == 32 * 1024
        assert cfg.l1_latency == 25
        assert cfg.l2_size == 768 * 1024
        assert cfg.l2_latency == 120
        assert cfg.n_mshrs == 32
        assert cfg.dram_latency == 300
        assert cfg.dram_bandwidth_gbps == 192.0
        assert cfg.line_size == 128
        assert cfg.op_latencies["falu"] == 25

    def test_small_preset(self):
        cfg = GPUConfig.small(n_cores=2, warps_per_core=8)
        assert cfg.n_cores == 2
        assert cfg.max_warps_per_core == 8


class TestDerived:
    def test_dram_service_cycles_eq22(self):
        cfg = GPUConfig()
        # s = freq * L / B = 1 GHz * 128 B / 192 GB/s = 2/3 cycle
        assert cfg.dram_service_cycles == pytest.approx(128.0 / 192.0)

    def test_dram_service_scales_with_clock(self):
        slow = GPUConfig().with_(core_clock_ghz=2.0)
        assert slow.dram_service_cycles == pytest.approx(2 * 128.0 / 192.0)

    def test_l2_miss_latency_is_additive(self):
        cfg = GPUConfig()
        assert cfg.l2_miss_latency == 120 + 300

    def test_miss_event_latency(self):
        cfg = GPUConfig()
        assert cfg.miss_event_latency("l1_hit") == 25
        assert cfg.miss_event_latency("l2_hit") == 120
        assert cfg.miss_event_latency("l2_miss") == 420

    def test_miss_event_latency_rejects_unknown(self):
        with pytest.raises(ConfigError):
            GPUConfig().miss_event_latency("l3_hit")

    def test_issue_rate(self):
        assert GPUConfig().issue_rate == 1.0


class TestWith:
    def test_with_returns_modified_copy(self):
        base = GPUConfig()
        swept = base.with_(n_mshrs=64)
        assert swept.n_mshrs == 64
        assert base.n_mshrs == 32

    def test_with_revalidates(self):
        with pytest.raises(ConfigError):
            GPUConfig().with_(n_mshrs=0)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_cores", 0),
            ("warp_size", 0),
            ("scheduler", "fifo"),
            ("issue_width", 2),
            ("n_mshrs", 0),
            ("dram_bandwidth_gbps", 0.0),
            ("core_clock_ghz", -1.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ConfigError):
            GPUConfig(**{field: value})

    def test_max_threads_must_be_warp_multiple(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_threads_per_core=1000)

    def test_cache_geometry_must_divide(self):
        with pytest.raises(ConfigError):
            GPUConfig(l1_size=1000)

    def test_simt_width_must_equal_warp_size(self):
        with pytest.raises(ConfigError):
            GPUConfig(simt_width=16)

    def test_missing_op_latency_class(self):
        with pytest.raises(ConfigError):
            GPUConfig(op_latencies={"ialu": 4})
