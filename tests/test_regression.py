"""Accuracy regression guards.

Loose per-class error caps for GPUMech against the oracle at tiny scale.
These are deliberately generous (roughly 2x the currently measured
errors) — their job is to catch silent accuracy regressions from future
changes, not to pin exact numbers.
"""

import pytest

from repro.config import GPUConfig
from repro.harness.runner import Runner
from repro.workloads import Scale


@pytest.fixture(scope="module")
def runner():
    return Runner(GPUConfig.small(n_cores=2, warps_per_core=16), Scale.tiny())


#: kernel -> maximum tolerated relative CPI error of the full model.
ERROR_CAPS = {
    # coalesced / compute: the model should be tight here
    "vectoradd": 0.40,
    "cfd_step_factor": 0.40,
    "blackscholes": 0.40,
    "quasirandom": 0.15,
    "mandelbrot": 0.25,
    # divergent memory: contention modeling carries the prediction
    "strided_deg8": 0.45,
    "strided_deg32": 0.60,
    "cfd_compute_flux": 0.45,
    # write-heavy: the bandwidth model carries the prediction
    "sad_calc_8": 0.55,
    "transpose_naive": 0.55,
    "kmeans_invert_mapping": 0.65,
}


@pytest.mark.parametrize("kernel,cap", sorted(ERROR_CAPS.items()))
def test_gpumech_error_within_cap(runner, kernel, cap):
    result = runner.evaluate(kernel)
    error = result.error("mt_mshr_band")
    assert error <= cap, (
        "%s: GPUMech error %.1f%% exceeds regression cap %.0f%% "
        "(oracle CPI %.3f, model CPI %.3f)"
        % (kernel, 100 * error, 100 * cap, result.oracle_cpi,
           result.model_cpis["mt_mshr_band"])
    )


def test_mean_error_budget(runner):
    """The mean across the regression set stays under a global budget."""
    errors = [
        runner.evaluate(kernel).error("mt_mshr_band")
        for kernel in ERROR_CAPS
    ]
    mean = sum(errors) / len(errors)
    assert mean < 0.30


def test_gpumech_beats_naive_overall(runner):
    wins = 0
    ties = 0
    for kernel in ERROR_CAPS:
        result = runner.evaluate(kernel)
        band = result.error("mt_mshr_band")
        naive = result.error("naive")
        if band < naive - 1e-9:
            wins += 1
        elif band <= naive + 1e-9:
            ties += 1
    assert wins + ties >= len(ERROR_CAPS) * 0.6
