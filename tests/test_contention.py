"""Unit tests for the contention models (Sec. IV-B, Eq. 18-23)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.core.contention import (
    _mean_wave,
    dram_queuing_delay,
    model_contention,
    mshr_queuing_delay,
)
from repro.core.interval import Interval, IntervalProfile


class TestMeanWave:
    @given(st.integers(1, 500), st.integers(1, 64))
    def test_matches_bruteforce(self, n, m):
        brute = sum(math.ceil(j / m) for j in range(1, n + 1)) / n
        assert _mean_wave(n, m) == pytest.approx(brute)

    def test_zero_requests(self):
        assert _mean_wave(0, 32) == 1.0


class TestMSHRQueuing:
    def test_no_delay_under_capacity(self):
        # Eq. 20: no queuing when requests fit in the MSHRs.
        assert mshr_queuing_delay(32, 32, 420.0) == 0.0
        assert mshr_queuing_delay(10, 32, 420.0) == 0.0

    def test_paper_example_two_waves(self):
        # 64 requests over 32 MSHRs: waves are 1,1,...,2,2 -> mean 1.5;
        # queuing delay = 420 * 0.5 = 210 (Eq. 19 example structure).
        assert mshr_queuing_delay(64, 32, 420.0) == pytest.approx(210.0)

    def test_monotone_in_requests(self):
        delays = [mshr_queuing_delay(n, 32, 420.0) for n in (33, 64, 128, 256)]
        assert delays == sorted(delays)

    def test_more_mshrs_less_delay(self):
        assert mshr_queuing_delay(128, 64, 420.0) < mshr_queuing_delay(
            128, 32, 420.0
        )


class TestDRAMQueuing:
    def config(self, n_cores=2):
        return GPUConfig.small(n_cores=n_cores)

    def test_zero_requests(self):
        assert dram_queuing_delay(0.0, 100.0, self.config()) == 0.0

    def test_md1_formula_low_load(self):
        config = self.config()
        s = config.dram_service_cycles
        core_reqs, cycles = 10.0, 1000.0
        lam = core_reqs * config.n_cores / cycles
        rho = lam * s
        expected = lam * s * s / (2 * (1 - rho))
        assert dram_queuing_delay(core_reqs, cycles, config) == pytest.approx(
            expected
        )

    def test_saturation_capped(self):
        # Eq. 21: rho >= 1 falls back to half the max backlog.
        config = self.config()
        s = config.dram_service_cycles
        core_reqs, cycles = 10_000.0, 10.0
        expected_cap = s * core_reqs * config.n_cores / 2
        assert dram_queuing_delay(core_reqs, cycles, config) == pytest.approx(
            expected_cap
        )

    def test_monotone_in_load(self):
        config = self.config()
        delays = [
            dram_queuing_delay(n, 1000.0, config) for n in (1, 10, 100, 1000)
        ]
        assert delays == sorted(delays)

    def test_higher_bandwidth_less_delay(self):
        slow = GPUConfig.small().with_(dram_bandwidth_gbps=64.0)
        fast = GPUConfig.small().with_(dram_bandwidth_gbps=256.0)
        assert dram_queuing_delay(50, 500.0, fast) < dram_queuing_delay(
            50, 500.0, slow
        )


def profile_with(interval):
    p = IntervalProfile(warp_id=0)
    p.intervals.append(interval)
    return p


class TestModelContention:
    def test_no_memory_no_contention(self):
        profile = profile_with(Interval(n_insts=10, stall_cycles=5.0))
        result = model_contention(profile, 32, GPUConfig(), 420.0)
        assert result.cpi == 0.0
        assert result.cpi_mshr_floor == 0.0
        assert result.cpi_bandwidth_floor == 0.0

    def test_mshr_contention_appears_with_divergence(self):
        interval = Interval(
            n_insts=10,
            stall_cycles=420.0,
            n_loads=1,
            load_reqs=32,
            exp_mshr_reqs=32.0,
            exp_mshr_loads=1.0,
        )
        few = model_contention(profile_with(interval), 1, GPUConfig(), 420.0)
        many = model_contention(profile_with(interval), 32, GPUConfig(), 420.0)
        assert few.cpi_mshr_model == 0.0  # 32 requests fit
        assert many.cpi_mshr_model > 0.0

    def test_floor_grows_with_traffic(self):
        def result(reqs):
            interval = Interval(
                n_insts=10, stall_cycles=100.0, n_loads=1,
                load_reqs=reqs, exp_mshr_reqs=float(reqs),
                exp_dram_read_reqs=float(reqs), exp_mshr_loads=1.0,
                exp_dram_loads=1.0,
            )
            return model_contention(
                profile_with(interval), 8, GPUConfig(), 420.0
            )

        assert result(32).cpi_mshr_floor > result(4).cpi_mshr_floor
        assert result(32).cpi_bandwidth_floor > result(4).cpi_bandwidth_floor

    def test_write_traffic_drives_bandwidth_floor_only(self):
        interval = Interval(
            n_insts=10, stall_cycles=10.0, n_stores=4, store_reqs=128
        )
        result = model_contention(profile_with(interval), 8, GPUConfig(), 420.0)
        assert result.cpi_mshr_floor == 0.0  # stores never occupy MSHRs
        assert result.cpi_bandwidth_floor > 0.0

    def test_effective_components_respect_floors(self):
        interval = Interval(
            n_insts=10, stall_cycles=10.0, n_stores=4, store_reqs=256
        )
        result = model_contention(profile_with(interval), 8, GPUConfig(), 420.0)
        mshr, sfu, smem, queue = result.effective_components(
            cpi_multithreading=1.0
        )
        assert 1.0 + mshr + sfu + smem + queue == pytest.approx(
            max(1.0 + result.cpi, result.cpi_mshr_floor,
                result.cpi_bandwidth_floor)
        )

    def test_effective_components_noop_when_floors_below(self):
        interval = Interval(
            n_insts=100, stall_cycles=10.0, n_loads=1, load_reqs=1,
            exp_mshr_reqs=0.1, exp_dram_read_reqs=0.1, exp_mshr_loads=0.1,
            exp_dram_loads=0.1,
        )
        result = model_contention(profile_with(interval), 2, GPUConfig(), 420.0)
        mshr, sfu, smem, queue = result.effective_components(
            cpi_multithreading=5.0
        )
        assert mshr == pytest.approx(result.cpi_mshr_model)
        assert sfu == 0.0 and smem == 0.0
        assert queue == pytest.approx(result.cpi_queue_model)

    def test_per_interval_lists_align(self):
        profile = IntervalProfile(warp_id=0)
        profile.intervals.extend(
            [Interval(n_insts=5, stall_cycles=1.0)] * 3
        )
        result = model_contention(profile, 4, GPUConfig(), 420.0)
        assert len(result.per_interval_mshr) == 3
        assert len(result.per_interval_queue) == 3
