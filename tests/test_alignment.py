"""Tests for the warp-alignment signal behind the blended RR model."""

import pytest

from repro.config import GPUConfig
from repro.core.model import GPUMech
from repro.core.multithreading import kernel_alignment
from repro.isa import KernelBuilder
from repro.memory.cache_simulator import PCStats
from repro.memory.hierarchy import MissEvent


class TestCrossWarpCollision:
    def stats_with(self, occurrences):
        stats = PCStats(pc=0, is_store=False)
        stats.n_insts = 1  # non-zero so consumers don't skip it
        stats.occurrence_events = occurrences
        return stats

    def test_full_agreement(self):
        stats = self.stats_with([{MissEvent.L2_MISS: 8}] * 3)
        assert stats.cross_warp_collision() == 1.0

    def test_half_split(self):
        stats = self.stats_with([
            {MissEvent.L1_HIT: 4, MissEvent.L2_MISS: 4},
        ])
        assert stats.cross_warp_collision() == pytest.approx(0.5)

    def test_single_warp_occurrences_skipped(self):
        stats = self.stats_with([
            {MissEvent.L1_HIT: 1},  # only one warp reached it: no signal
        ])
        assert stats.cross_warp_collision() == 1.0

    def test_weighted_by_warp_count(self):
        stats = self.stats_with([
            {MissEvent.L2_MISS: 8},                      # agree, weight 8
            {MissEvent.L1_HIT: 1, MissEvent.L2_MISS: 1},  # split, weight 2
        ])
        expected = (1.0 * 8 + 0.5 * 2) / 10
        assert stats.cross_warp_collision() == pytest.approx(expected)

    def test_empty(self):
        assert self.stats_with([]).cross_warp_collision() == 1.0


class TestKernelAlignment:
    def prepare(self, build_fn, n_threads=256, block_size=64):
        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        b = KernelBuilder("k")
        build_fn(b)
        b.exit()
        kernel = b.build(n_threads=n_threads, block_size=block_size)
        model = GPUMech(config)
        inputs = model.prepare(kernel)
        rep = inputs.trace.warps[inputs.selection.index]
        return kernel_alignment(rep, inputs.latency_table)

    def test_streaming_kernel_fully_aligned(self):
        """Every warp misses its own line identically: lockstep holds."""

        def build(b):
            addr = b.iadd(b.imul(b.tid(), 4), 0x100000)
            b.fadd(b.ld(addr), 1.0)

        assert self.prepare(build) == pytest.approx(1.0)

    def test_first_toucher_sharing_lowers_alignment(self):
        """All warps load the same line: one misses, the rest hit."""

        def build(b):
            b.fadd(b.ld(b.mov(0x100000)), 1.0)

        alignment = self.prepare(build)
        assert alignment < 1.0

    def test_compute_only_kernel_aligned(self):
        def build(b):
            acc = b.mov(1.0)
            for _ in range(4):
                acc = b.fmul(acc, 1.5, dst=acc)

        assert self.prepare(build) == pytest.approx(1.0)
