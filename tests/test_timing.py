"""Unit and integration tests for the cycle-level timing oracle."""

import pytest

from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.timing import TimingSimulator, simulate_kernel
from repro.trace import emulate

from tests.conftest import build_divergent_load, build_fp_chain, build_saxpy


def one_core(warps=8, **overrides):
    return GPUConfig.small(n_cores=1, warps_per_core=warps).with_(**overrides)


def run(kernel, config, **kwargs):
    return TimingSimulator(config, **kwargs).run(emulate(kernel, config))


class TestExactCycles:
    def test_independent_alu_single_warp(self):
        """n independent IALU ops issue back to back: cycles = n."""
        b = KernelBuilder("alu")
        for _ in range(10):
            b.iadd(1, 2)
        b.exit()
        kernel = b.build(32, 32)
        stats = run(kernel, one_core())
        # 10 iadds + exit issue in consecutive cycles 0..10.
        assert stats.total_cycles == 11.0
        assert stats.cpi == 1.0

    def test_dependent_chain_single_warp(self):
        """A dependent FP chain stalls `latency` cycles per link."""
        config = one_core()
        kernel = build_fp_chain(length=4, n_threads=32, block_size=32)
        stats = run(kernel, config)
        falu = config.op_latencies["falu"]
        ialu = config.op_latencies["ialu"]
        # mov@0 (ialu 4cy); fmuls chain at 4, 29, 54, 79; exit @80 -> 81.
        assert stats.total_cycles == ialu + 3 * falu + 2

    def test_two_warps_hide_dependency_stalls(self):
        config = one_core(warps=2)
        kernel = build_fp_chain(length=4, n_threads=64, block_size=64)
        single = run(build_fp_chain(4, 32, 32), config).total_cycles
        double = run(kernel, config).total_cycles
        # The second warp interleaves into the first's stalls: far less
        # than 2x, at most a few extra cycles.
        assert double < 1.2 * single

    def test_coalesced_load_latency(self):
        config = one_core()
        b = KernelBuilder("ld")
        value = b.ld(b.iadd(b.imul(b.tid(), 4), 0x10000))
        b.fadd(value, 1.0)
        b.exit()
        stats = run(b.build(32, 32), config)
        # Address chain (ialu 4cy each): mov@0, imul@4, iadd@8, ld@12;
        # fadd waits L2 latency + DRAM bus transfer + DRAM latency
        # (120 + 2/3 + 300), issuing on the next integer cycle: 433.
        import math

        fadd_issue = math.ceil(12 + 120 + config.dram_service_cycles + 300)
        assert stats.total_cycles == fadd_issue + 2


class TestSchedulers:
    def test_rr_rotates_issue(self):
        config = one_core(warps=4)
        kernel = build_fp_chain(length=8, n_threads=128, block_size=128)
        stats = run(kernel, config)
        assert stats.total_insts == 4 * 10

    def test_gto_and_rr_same_work(self):
        kernel = build_saxpy(n_threads=256, block_size=64)
        rr = run(kernel, one_core(warps=8))
        gto = run(kernel, one_core(warps=8, scheduler="gto"))
        assert rr.total_insts == gto.total_insts
        assert rr.scheduler == "rr" and gto.scheduler == "gto"

    def test_rr_interleaves_vs_gto_greedy(self):
        """With independent work, GTO drains one warp before switching
        while RR alternates — both finish, cycle counts may differ."""
        b = KernelBuilder("indep")
        for _ in range(6):
            b.iadd(1, 2)
        b.exit()
        kernel = b.build(64, 64)
        rr = run(kernel, one_core(warps=2))
        gto = run(kernel, one_core(warps=2, scheduler="gto"))
        # Issue-bound either way: 14 instructions on one core.
        assert rr.total_cycles == gto.total_cycles == 14.0


class TestMemorySystem:
    def test_mshr_structural_stall(self):
        """More outstanding divergent misses than MSHRs serialises loads."""
        few_mshrs = one_core(warps=8).with_(n_mshrs=32)
        kernel = build_divergent_load(n_threads=256, block_size=256)
        stats = run(kernel, few_mshrs)
        assert any(c.mshr_stall_cycles > 0 for c in stats.cores)
        # 8 warps x 32 divergent misses = 256 requests over 32 MSHRs:
        # at least 8 service waves of 420 cycles each.
        assert stats.total_cycles > 8 * 420

    def test_more_mshrs_never_slower(self):
        kernel = build_divergent_load(n_threads=256, block_size=256)
        small = run(kernel, one_core(warps=8).with_(n_mshrs=32))
        large = run(kernel, one_core(warps=8).with_(n_mshrs=256))
        assert large.total_cycles <= small.total_cycles

    def test_mshr_merging_on_shared_lines(self):
        b = KernelBuilder("shared")
        value = b.ld(b.mov(0x10000))  # all lanes same line
        b.fadd(value, 1.0)
        b.exit()
        kernel = b.build(128, 128)  # 4 warps load the same line
        stats = run(kernel, one_core(warps=4))
        # A single miss serves all four warps: warp 1 allocates the MSHR,
        # warps 2..4 see a pending hit on the freshly installed tag.
        assert stats.mshr_allocations == 1
        # Everyone waits on the same fill, not four serialised misses.
        assert stats.total_cycles < 2 * 420

    def test_write_traffic_consumes_bandwidth(self):
        """Store-heavy kernels slow loads via the shared DRAM queue."""
        def build(n_stores):
            b = KernelBuilder("wr%d" % n_stores)
            tid = b.tid()
            offset = b.imul(tid, 128)
            for i in range(n_stores):
                b.st(b.iadd(offset, (i + 1) << 22), 1.0)
            value = b.ld(b.iadd(b.imul(tid, 4), 1 << 30))
            b.fadd(value, 1.0)
            b.exit()
            return b.build(256, 64)

        quiet = run(build(0), one_core(warps=8))
        noisy = run(build(8), one_core(warps=8))
        assert noisy.dram_mean_queue_delay > quiet.dram_mean_queue_delay
        assert noisy.total_cycles > quiet.total_cycles

    def test_stores_do_not_block_warps(self):
        """A store never creates a dependence stall."""
        b = KernelBuilder("st")
        offset = b.imul(b.tid(), 128)
        for i in range(4):
            b.st(b.iadd(offset, (i + 1) << 22), 2.0)
        b.exit()
        kernel = b.build(32, 32)
        stats = run(kernel, one_core())
        # Stores never allocate MSHRs and complete in one cycle; the only
        # stalls are the in-order address-computation (ialu) dependences:
        # mov@0, imul@4, then (iadd@t, st@t+4) pairs -> 29 cycles total.
        assert stats.mshr_allocations == 0
        assert stats.total_cycles == 29.0

    def test_dram_utilization_reported(self):
        kernel = build_divergent_load(n_threads=256, block_size=256)
        stats = run(kernel, one_core(warps=8))
        assert 0.0 < stats.dram_utilization <= 1.0
        assert stats.dram_requests > 0


class TestMultiCore:
    def test_blocks_distributed_round_robin(self):
        config = GPUConfig.small(n_cores=2, warps_per_core=8)
        kernel = build_saxpy(n_threads=512, block_size=64)  # 8 blocks
        stats = run(kernel, config)
        assert stats.n_cores_used == 2
        insts = [c.insts_issued for c in stats.cores]
        assert insts[0] == insts[1]  # symmetric

    def test_unused_cores_dont_count(self):
        config = GPUConfig.small(n_cores=4, warps_per_core=8)
        kernel = build_saxpy(n_threads=64, block_size=64)  # 1 block
        stats = run(kernel, config)
        assert stats.n_cores_used == 1

    def test_warps_per_core_override(self):
        kernel = build_fp_chain(length=8, n_threads=512, block_size=64)
        config = GPUConfig.small(n_cores=1, warps_per_core=16)
        fewer = TimingSimulator(config, warps_per_core=2).run(
            emulate(kernel, config)
        )
        more = TimingSimulator(config, warps_per_core=16).run(
            emulate(kernel, config)
        )
        assert more.total_cycles < fewer.total_cycles


class TestCycleSkippingEquivalence:
    @pytest.mark.parametrize("scheduler", ["rr", "gto"])
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_saxpy(256, 64),
            lambda: build_divergent_load(256, 64),
            lambda: build_fp_chain(6, 128, 64),
        ],
    )
    def test_skipping_matches_naive_loop(self, scheduler, builder):
        config = GPUConfig.small(n_cores=2, warps_per_core=4).with_(
            scheduler=scheduler
        )
        trace = emulate(builder(), config)
        fast = TimingSimulator(config, cycle_skipping=True).run(trace)
        slow = TimingSimulator(config, cycle_skipping=False).run(trace)
        assert fast.total_cycles == slow.total_cycles
        assert fast.total_insts == slow.total_insts


class TestStats:
    def test_cpi_definition(self):
        kernel = build_saxpy(128, 64)
        config = GPUConfig.small(n_cores=2, warps_per_core=8)
        stats = run(kernel, config)
        assert stats.cpi == pytest.approx(
            stats.total_cycles * stats.n_cores_used / stats.total_insts
        )
        assert stats.ipc == pytest.approx(1 / stats.cpi)

    def test_summary_mentions_kernel(self):
        stats = run(build_saxpy(128, 64), one_core())
        assert "saxpy" in stats.summary()

    def test_convenience_wrapper(self):
        config = one_core()
        trace = emulate(build_saxpy(128, 64), config)
        assert simulate_kernel(trace, config).total_insts == trace.total_insts
